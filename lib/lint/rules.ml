open Typedtree

type meta = {
  id : string;
  name : string;
  summary : string;
  example : string;
  details : string;
}

let all =
  [
    {
      id = "R1";
      name = "poly-compare";
      summary =
        "polymorphic compare/=/<>/min/max/Hashtbl.hash at a non-base type";
      example =
        "bad: `if s1 = s2' on Structure.t — fixed: `Structure.equal s1 s2'";
      details =
        "Polymorphic structural comparison is instantiated at a record,\n\
         abstract or type-variable type.  The repository defines dedicated\n\
         comparators (Nodeset.compare, Structure.equal, Graph.equal, ...)\n\
         whose orderings the rest of the machinery treats as canonical;\n\
         Stdlib.compare on the underlying representation can disagree with\n\
         them (and crashes on functional components), so a polymorphic\n\
         instantiation silently forks the notion of equality the replay\n\
         and sweep layers rely on.  Fix: compare explicit fields with\n\
         Int.compare / String.compare / Nodeset.compare, or pass a ~cmp\n\
         argument.  Comparisons against the constant constructors [] and\n\
         None only inspect the tag and are exempt.";
    };
    {
      id = "R2";
      name = "iteration-order-leak";
      summary = "Hashtbl.fold builds a list that escapes unsorted";
      example =
        "bad: `Hashtbl.fold (fun k _ acc -> k :: acc) t []' returned as-is \
         — fixed: pipe it through `List.sort Int.compare'";
      details =
        "A Hashtbl.fold application produces a list without a dominating\n\
         List.sort / List.stable_sort / List.sort_uniq / Nodeset.of_list\n\
         normalization.  Hash-bucket order depends on the table's seed\n\
         and insertion history: under OCAMLRUNPARAM=R (or a different\n\
         OCaml release) the list order changes, so any simulator\n\
         transcript, decision tie-break or serialized artifact derived\n\
         from it stops being reproducible, which breaks seeded attack\n\
         replay (DESIGN.md par.5) and the Parsweep determinism contract.\n\
         Fix: sort by an explicit key right at the fold, or accumulate\n\
         into a Nodeset / sorted structure instead of a list.";
    };
    {
      id = "R3";
      name = "nondeterminism-source";
      summary =
        "Stdlib.Random / Sys.time / Unix.gettimeofday outside prng.ml, \
         workloads/timing.ml and bench/";
      example =
        "bad: `Random.int n' in a protocol — fixed: `Prng.int rng n' with \
         a threaded seed";
      details =
        "Every random draw in the repository must flow through the seeded\n\
         splitmix64 generator in lib/base/prng.ml so that experiments and\n\
         attack campaigns replay bit-for-bit from their recorded seed.\n\
         Stdlib.Random has ambient global state, and wall-clock reads\n\
         (Sys.time, Unix.gettimeofday, Unix.time) leak scheduling noise\n\
         into values.  Only lib/base/prng.ml (the sanctioned generator),\n\
         lib/workloads/timing.ml (the bench-only timing helpers) and\n\
         bench/ (which measures wall-clock on purpose) are exempt.\n\
         Fix: thread a Prng.t, or move timing into the bench layer.";
    };
    {
      id = "R4";
      name = "domain-unsafe-state";
      summary = "top-level mutable state shared across Domain fan-out";
      example =
        "bad: `let cache = Hashtbl.create 64' at module level — fixed: \
         allocate per call, or guard every access with a locked wrapper";
      details =
        "A module-level let binds a mutable container (ref, Hashtbl.t,\n\
         Buffer.t, Queue.t, Stack.t, bytes, array, or a record literal\n\
         with mutable fields).  Parsweep.map and the Campaign runner fan\n\
         work out to OCaml 5 Domains; any function they call shares\n\
         module-level state across domains without synchronization, which\n\
         is a data race and makes sweep results depend on scheduling.\n\
         The check runs over the summary store: a binding is exempt only\n\
         when the locked-only analysis proves every open reference to it\n\
         sits behind a lock-acquiring wrapper (the hc.ml pattern) — there\n\
         is no by-file carve-out.  Fix: allocate the state inside the\n\
         function, thread it through arguments, use Atomic.t /\n\
         Domain.DLS for genuinely global counters, or route every access\n\
         through a locked wrapper.";
    };
    {
      id = "R5";
      name = "interface-hygiene";
      summary = "missing .mli or use of Obj.magic";
      example =
        "bad: lib/foo.ml with no lib/foo.mli — fixed: publish the \
         interface and document its determinism contract";
      details =
        "Every module under lib/ must publish an interface: the .mli is\n\
         where determinism contracts (iteration order, identity\n\
         guarantees, single-use strategies) are documented, and an\n\
         unconstrained module leaks representation details that the\n\
         packed-structure and replay layers must be free to change.\n\
         Obj.magic (and Obj.repr/Obj.obj) defeats the type system and\n\
         with it every guarantee the other rules check.  Fix: add the\n\
         .mli; delete the Obj use.";
    };
    {
      id = "R6";
      name = "domain-race";
      summary =
        "mutable state reachable from a closure fanned out across Domains";
      example =
        "bad: `let hits = ref 0 in Parsweep.map (fun i -> incr hits; ...)' \
         — fixed: return counts and sum after the join";
      details =
        "A closure passed to Parsweep.map / Parsweep.map_list /\n\
         Domain.spawn captures a mutable value (ref, Hashtbl, Buffer,\n\
         Queue, Stack, array, bytes, or a record with mutable fields)\n\
         allocated outside the closure, or transitively calls — through\n\
         the cross-module call graph — a function that touches top-level\n\
         mutable state.  Every domain of the fan-out shares that state\n\
         without synchronization: a data race under OCaml 5's memory\n\
         model, and sweep results start depending on scheduling.\n\
         Domain-local state (allocated inside the closure) is exempt, as\n\
         are Atomic.t cells and the sanctioned fan-out engine\n\
         lib/workloads/parsweep.ml itself (its result array is written\n\
         at disjoint indices and read only after the join).  Fix:\n\
         allocate inside the closure, pre-split per instance before the\n\
         sweep, or aggregate sequentially after the parallel map.";
    };
    {
      id = "R7";
      name = "theorem4-taint";
      summary =
        "adversary-controlled data reaches a decision sink unverified";
      example =
        "bad: `st.decided <- Some v' straight from an inbox payload — \
         fixed: guard with a cut/cover check AND a connectivity check";
      details =
        "Theorem 4 is a safety obligation: the receiver must never decide\n\
         a wrong value, however the adversary lies.  Statically that\n\
         means every interprocedural path from a taint source (messages\n\
         delivered through an Engine step's ~inbox, Flood.msg payloads,\n\
         Attack/Program payloads, Discovery reports) to a decision sink\n\
         (an assignment to a `decided' field, Campaign verdict\n\
         construction) must pass a sanitizer of BOTH families:\n\
         - cut/cover verification: Cut.find_rmt_cut / find_rmt_zpp_cut /\n\
           is_rmt_cut, Solvability.is_solvable / partial_knowledge /\n\
           ad_hoc / feasibility_equal, Structure.mem / maximal_sets,\n\
           Subset_enum.connected_supersets;\n\
         - positive-connectivity verification: Connectivity.connected /\n\
           connected_avoiding / is_cut, Paths.shortest_path,\n\
           Flood.trail_ok.  Paths.find_simple_path deliberately does\n\
           NOT count: the adversary can always supply a claimed graph\n\
           containing some path, so its success verifies nothing.\n\
         The PR 2 fuzzing campaign caught exactly the second family\n\
         missing: a full-looking message set whose claimed graph had no\n\
         D-R path at all (vacuous fullness), letting a spammed value\n\
         through the cover check.  The finding prints the witnessing\n\
         source->sink call chain.  The pass is higher-order aware: a\n\
         guard reaching the sink through a function-valued argument (a\n\
         ~decider parameter) is resolved through the summary store's\n\
         instantiation sets, so only genuinely unguarded chains remain.\n\
         Fix: guard the decision with the missing verification, or pin\n\
         with a justification naming the guard the analysis cannot see.";
    };
    {
      id = "R8";
      name = "lock-discipline";
      summary =
        "critical-section obligations: re-entry, heavy compute under \
         lock, may-raise without Fun.protect, barrier captures";
      example =
        "bad: `Hc.locked (fun () -> Structure.join a b)' — fixed: probe \
         under the lock, compute outside, re-lock to store";
      details =
        "The repository runs two deliberate concurrency protocols, and\n\
         R8 verifies their obligations instead of trusting carve-outs.\n\
         (1) Hc's compute-outside-lock: a closure passed to a\n\
         lock-acquiring wrapper (Hc.locked, Mutex.protect) must not\n\
         transitively re-acquire a mutex (the global lock is not\n\
         re-entrant) and must not reach allocation-heavy compute\n\
         (Structure.restrict/join, the Solvability core, Cut search,\n\
         Subset_enum, the Parsweep fan-out) — probe under the lock,\n\
         compute outside, re-lock to store.  (2) Raw-lock hygiene: in\n\
         source order between Mutex.lock and Mutex.unlock, a call that\n\
         may raise (failwith, invalid_arg, raise, or any function whose\n\
         summary says so) with no Fun.protect in the region leaves the\n\
         lock held on the exception path.  (3) Mcast's barrier-capture\n\
         discipline: a Domain.spawn closure synchronizing on a phase\n\
         barrier (Gate.await/set, Barrier.await, Condition.wait) may\n\
         share captures, but only per-domain indexable ones (array,\n\
         bytes); a shared ref or Hashtbl has no single-writer-per-phase\n\
         story.  R6 stands down on barrier-disciplined closures; R8 owns\n\
         the residual obligation.  Fix: restructure to\n\
         probe/compute/store, wrap the region in Fun.protect, or give\n\
         each domain its own indexed slot.";
    };
    {
      id = "R9";
      name = "automaton-discipline";
      summary =
        "protocol automaton breaks the round-machine contract: decision \
         not write-once, inbox head-only, or unhandled message shape";
      example =
        "bad: `match inbox with (_, x) :: _ -> decide x' (Naive) — fixed: \
         fold over the whole inbox before deciding";
      details =
        "Theorem 4's safety argument treats every ('s,'m)\n\
         Transport.automaton as a well-behaved round machine, and R9\n\
         checks the contract on the model extracted from its typedtree:\n\
         - decision write-once/monotone: no step-reachable path assigns\n\
           a field the `decision' component reads without first reading\n\
           it (an unguarded write can map Some v to a different Some),\n\
           and no path assigns it a literal None (a decision reset);\n\
         - handler totality: every message constructor an honest\n\
           init/step can send is matched by some step-reachable case —\n\
           an unmatched constructor is a delivery an honest node drops\n\
           on the floor;\n\
         - whole-inbox consumption: a step that matches only the head\n\
           of its inbox (the Naive.first_delivery strawman) makes the\n\
           decision depend on delivery order within a round, which the\n\
           adversary schedules.\n\
         Replay acceptance is deliberately NOT a finding: whether step\n\
         reads ~round and whether ingestion is dedup-guarded\n\
         (Hashtbl.mem / List.mem before recording) are emitted as model\n\
         fields in `rmt_lint model' for audit — PKA's dedup guard is\n\
         correct despite being round-insensitive.  Fix: guard decision\n\
         writes on the current value, handle (or explicitly ignore with\n\
         a match case) every alphabet constructor, fold over the whole\n\
         inbox; or pin a deliberately undisciplined strawman in the\n\
         baseline.";
    };
    {
      id = "R10";
      name = "communication-budget";
      summary =
        "protocol automaton with no finite static per-round send bound";
      example =
        "bad: a step that re-broadcasts inside an unclassifiable loop — \
         fixed: iterate the inbox or Graph.neighbors so the bound is \
         |inbox|·deg(v)";
      details =
        "ROADMAP item 4 asks for first-class communication accounting:\n\
         every protocol's per-round message count should be bounded by\n\
         a symbolic function of the topology (constant, deg(v)-linear,\n\
         n-linear, |inbox|-linear, or |inbox|·deg(v)), concretizable\n\
         per instance and cross-checked against Transport.stats.  The\n\
         model extractor classifies each send-record construction by\n\
         its iteration context and composes callee bounds by context\n\
         multiplication (broadcast under an inbox iterator is\n\
         |inbox|·deg(v)); recursion that produces sends, while/for\n\
         loops around sends, and sends through unresolvable calls all\n\
         degrade to `unbounded', and R10 fires on any automaton whose\n\
         init or step bound is unbounded — such a protocol cannot\n\
         participate in the lint-model.json budget that\n\
         test/net/test_cost_bound.ml enforces dynamically.  Bounded\n\
         protocols are not findings; their vectors are emitted in the\n\
         model dump.  Fix: restructure the send loop around one of the\n\
         classifiable iterations, or split the helper so the\n\
         send-producing part is directly bounded.";
    };
  ]

let find id =
  let id = String.uppercase_ascii (String.trim id) in
  List.find_opt (fun m -> String.equal m.id id) all

(* ------------------------------------------------------------------ *)
(* Name and type helpers (shared ones live in Names)                   *)
(* ------------------------------------------------------------------ *)

let path_name = Names.path_name

(* [Hashtbl.fold] should also match [Stdlib.Hashtbl.fold] (stripped) and
   re-exports like [Rmt_base.Nodeset.of_list]; a bare suffix like
   [compare] must NOT match [Nodeset.compare], so exact names get no
   suffix matching. *)
let qualified_matches = Names.qualified_matches

let poly_ops =
  [ "compare"; "="; "<>"; "<"; ">"; "<="; ">="; "min"; "max" ]

let is_poly_op name =
  List.exists (String.equal name) poly_ops
  || qualified_matches [ "Hashtbl.hash"; "Hashtbl.seeded_hash" ] name

let is_sorter_name =
  qualified_matches
    [
      "List.sort";
      "List.stable_sort";
      "List.fast_sort";
      "List.sort_uniq";
      "Nodeset.of_list";
      "Nodeset.of_array";
    ]

let is_hashtbl_fold = qualified_matches [ "Hashtbl.fold" ]
let is_pipe name = String.equal name "|>"
let is_apply_op name = String.equal name "@@"

let is_forbidden_random name =
  String.equal name "Random"
  || String.starts_with ~prefix:"Random." name
  || qualified_matches [ "Sys.time"; "Unix.gettimeofday"; "Unix.time" ] name

let is_obj_magic = qualified_matches [ "Obj.magic"; "Obj.repr"; "Obj.obj" ]

let r3_exempt file =
  String.ends_with ~suffix:"lib/base/prng.ml" file
  || String.equal file "prng.ml"
  || String.ends_with ~suffix:"lib/workloads/timing.ml" file
  || String.equal file "timing.ml"
  || String.starts_with ~prefix:"bench/" file

let type_is_base = Names.type_is_base
let type_is_list = Names.type_is_list
let show_type = Names.show_type
let first_arg_type = Names.first_arg_type

(* ------------------------------------------------------------------ *)
(* The traversal                                                       *)
(* ------------------------------------------------------------------ *)

let check_structure ~file str =
  let findings = ref [] in
  let context = ref "module" in
  let sorted_depth = ref 0 in
  (* ident occurrences already judged from their application site *)
  let handled : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let key (loc : Location.t) =
    (loc.loc_start.Lexing.pos_lnum, loc.loc_start.Lexing.pos_cnum)
  in
  let add ~loc rule message =
    let line = loc.Location.loc_start.Lexing.pos_lnum in
    let col =
      loc.Location.loc_start.Lexing.pos_cnum
      - loc.Location.loc_start.Lexing.pos_bol
    in
    findings :=
      Finding.make ~rule ~file ~line ~col ~context:!context message
      :: !findings
  in
  let ident_name e =
    match e.exp_desc with
    | Texp_ident (p, _, _) -> Some (path_name p)
    | _ -> None
  in
  let rec expr_is_sorter e =
    match e.exp_desc with
    | Texp_ident (p, _, _) -> is_sorter_name (path_name p)
    | Texp_apply (fn, _) -> expr_is_sorter fn
    | _ -> false
  in
  let is_const_ctor e =
    match e.exp_desc with
    | Texp_construct (_, cd, []) ->
      String.equal cd.Types.cstr_name "[]"
      || String.equal cd.Types.cstr_name "None"
    | _ -> false
  in
  let judge_poly ~loc name ty =
    match first_arg_type ty with
    | Some arg when not (type_is_base arg) ->
      add ~loc "R1"
        (Printf.sprintf
           "polymorphic %s instantiated at non-base type `%s'; use a \
            dedicated comparator"
           name (show_type arg))
    | Some _ | None -> ()
  in
  let on_ident e name =
    if is_poly_op name && not (Hashtbl.mem handled (key e.exp_loc)) then begin
      Hashtbl.replace handled (key e.exp_loc) ();
      judge_poly ~loc:e.exp_loc name e.exp_type
    end;
    if is_forbidden_random name && not (r3_exempt file) then
      add ~loc:e.exp_loc "R3"
        (Printf.sprintf
           "forbidden nondeterminism source %s; thread a seeded Prng.t \
            (lib/base/prng.ml) instead"
           name);
    if is_obj_magic name then
      add ~loc:e.exp_loc "R5" (Printf.sprintf "use of %s" name)
  in
  let default = Tast_iterator.default_iterator in
  let expr (sub : Tast_iterator.iterator) e =
    match e.exp_desc with
    | Texp_ident (p, _, _) ->
      on_ident e (path_name p);
      default.expr sub e
    | Texp_apply (fn, args) ->
      let actuals = List.filter_map (fun (_, a) -> a) args in
      let fname = ident_name fn in
      (match fname with
       | Some n when is_poly_op n ->
         Hashtbl.replace handled (key fn.exp_loc) ();
         if not (List.exists is_const_ctor actuals) then
           judge_poly ~loc:fn.exp_loc n fn.exp_type
       | _ -> ());
      (match fname with
       | Some n
         when is_hashtbl_fold n && type_is_list e.exp_type
              && !sorted_depth = 0 ->
         add ~loc:e.exp_loc "R2"
           "Hashtbl.fold builds a list in hash-bucket order with no \
            dominating sort/normalization; sort by an explicit key or \
            accumulate into a Nodeset"
       | _ -> ());
      let in_sorted f =
        incr sorted_depth;
        Fun.protect ~finally:(fun () -> decr sorted_depth) f
      in
      (match (fname, args) with
       | Some n, [ (_, Some arg); (_, Some f) ]
         when is_pipe n && expr_is_sorter f ->
         sub.expr sub f;
         in_sorted (fun () -> sub.expr sub arg)
       | Some n, [ (_, Some f); (_, Some arg) ]
         when is_apply_op n && expr_is_sorter f ->
         sub.expr sub f;
         in_sorted (fun () -> sub.expr sub arg)
       (* [x |> f] and [f @@ x] are rewritten by the typechecker into
          [Texp_apply (f, [x])] with a non-ident [f]; [expr_is_sorter]
          chases the application spine, so this one case covers direct,
          piped and partially-applied sorts alike. *)
       | _, _ when expr_is_sorter fn ->
         sub.expr sub fn;
         in_sorted (fun () -> List.iter (sub.expr sub) actuals)
       | _ ->
         sub.expr sub fn;
         List.iter (sub.expr sub) actuals)
    | _ -> default.expr sub e
  in
  let structure_item (sub : Tast_iterator.iterator) item =
    match item.str_desc with
    | Tstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          (match pat_bound_idents vb.vb_pat with
           | id :: _ -> context := Ident.name id
           | [] -> context := "pattern");
          (* R4 (top-level mutable state) is judged by the Lock pass
             over the summary store, where lock-protection can exempt
             it; this walk only tracks the context. *)
          sub.expr sub vb.vb_expr)
        vbs;
      context := "module"
    | _ -> default.structure_item sub item
  in
  let iterator = { default with expr; structure_item } in
  iterator.structure iterator str;
  List.sort Finding.compare !findings
