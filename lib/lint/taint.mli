(** R7 — the Theorem-4 taint pass.

    Tracks adversary-controlled data (Engine [~inbox] deliveries, Attack
    programs, Flood messages, Engine strategies) to receiver decisions
    ([_.decided <- ...], Campaign verdict construction) across the
    cross-module {!Callgraph}, and reports every source-to-sink call
    chain on which {e neither} sanitizer family appears:

    - {b cover/solvability}: [Cut.find_rmt_cut] / [Cut.find_rmt_zpp_cut]
      / [Cut.is_rmt_cut], [Solvability.is_solvable] and variants,
      [Structure.mem] / [Structure.maximal_sets] (quantifying a
      predicate over every maximal adversary set is a cover check),
      [Subset_enum.connected_supersets];
    - {b positive-connectivity}: [Connectivity.connected] /
      [connected_avoiding] / [is_cut], [Paths.shortest_path],
      [Flood.trail_ok].  [Paths.find_simple_path] is deliberately
      excluded: an adversary can always supply a claimed graph that
      contains {e some} path (the PR 2 vacuous-fullness bug), so its
      success verifies nothing.

    A function is sanitized in a family when it references one of that
    family's predicates directly, in a transitive callee, or — via the
    {!Summary} store's instantiation analysis — in a function its
    callers pass into one of its higher-order parameters (a [~decider]
    argument's guards count).  Findings are anchored at the sink and
    carry the full witnessing chain. *)

val rule : string
(** ["R7"]. *)

type family = Cover | Connectivity

val sanitizers : family -> string list
val family_name : family -> string

val is_source : Callgraph.fn_summary -> bool

val analyze : Summary.store -> Finding.t list
(** Sorted by {!Finding.compare}. *)

val audit : Summary.store -> string
(** Human-readable report of every source, every sink and, per sink and
    family, either "guarded" or the unguarded witness chain — the
    [rmt-lint paths] subcommand. *)
