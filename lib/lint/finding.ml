type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  context : string;
  message : string;
}

let make ~rule ~file ?(line = 0) ?(col = 0) ?(context = "module") message =
  { rule; file; line; col; context; message }

let fingerprint t =
  let key =
    String.concat "|" [ t.rule; t.file; t.context; t.message ]
  in
  String.sub (Digest.to_hex (Digest.string key)) 0 12

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let to_text t =
  Printf.sprintf "%s:%d:%d: [%s] %s  (in %s)" t.file t.line t.col t.rule
    t.message t.context

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  Printf.sprintf
    "{\"rule\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\
     \"context\":\"%s\",\"fingerprint\":\"%s\",\"message\":\"%s\"}"
    (json_escape t.rule) (json_escape t.file) t.line t.col
    (json_escape t.context) (fingerprint t) (json_escape t.message)

let list_to_json ts =
  match ts with
  | [] -> "[]"
  | ts ->
    "[\n  " ^ String.concat ",\n  " (List.map to_json ts) ^ "\n]"
