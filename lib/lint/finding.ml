type hop = {
  hop_fn : string;
  hop_file : string;
  hop_line : int;
}

type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  context : string;
  message : string;
  chain : hop list;
}

let make ~rule ~file ?(line = 0) ?(col = 0) ?(context = "module")
    ?(chain = []) message =
  { rule; file; line; col; context; message; chain }

(* Repo-relative normal form shared by fingerprints and SARIF: the same
   source reported as "./lib/a.ml", "lib//a.ml" or through the dune build
   tree ("_build/default/lib/a.ml") must hash identically, and two files
   with the same basename in different directories must not. *)
let normalize_path file =
  let file = String.map (fun c -> if c = '\\' then '/' else c) file in
  let rec strip file =
    if String.starts_with ~prefix:"./" file then
      strip (String.sub file 2 (String.length file - 2))
    else if String.starts_with ~prefix:"_build/default/" file then
      strip (String.sub file 15 (String.length file - 15))
    else file
  in
  let file = strip file in
  (* collapse any double slashes *)
  let buf = Buffer.create (String.length file) in
  String.iteri
    (fun i c ->
      if not (c = '/' && i > 0 && file.[i - 1] = '/') then
        Buffer.add_char buf c)
    file;
  Buffer.contents buf

let fingerprint t =
  let chain_part =
    String.concat ">"
      (List.map
         (fun h -> h.hop_fn ^ "@" ^ normalize_path h.hop_file)
         t.chain)
  in
  let key =
    String.concat "|"
      [ t.rule; normalize_path t.file; t.context; t.message; chain_part ]
  in
  String.sub (Digest.to_hex (Digest.string key)) 0 12

let hop_compare a b =
  let c = String.compare a.hop_fn b.hop_fn in
  if c <> 0 then c
  else
    let c = String.compare a.hop_file b.hop_file in
    if c <> 0 then c else Int.compare a.hop_line b.hop_line

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c
        else
          let c = String.compare a.message b.message in
          if c <> 0 then c
          else List.compare hop_compare a.chain b.chain

let chain_to_text chain =
  String.concat " -> "
    (List.map
       (fun h -> Printf.sprintf "%s (%s:%d)" h.hop_fn h.hop_file h.hop_line)
       chain)

let to_text t =
  let head =
    Printf.sprintf "%s:%d:%d: [%s] %s  (in %s)" t.file t.line t.col t.rule
      t.message t.context
  in
  match t.chain with
  | [] -> head
  | chain -> head ^ "\n    call chain: " ^ chain_to_text chain

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let hop_to_json h =
  Printf.sprintf "{\"fn\":\"%s\",\"file\":\"%s\",\"line\":%d}"
    (json_escape h.hop_fn)
    (json_escape h.hop_file)
    h.hop_line

let to_json t =
  let chain_json =
    match t.chain with
    | [] -> ""
    | chain ->
      Printf.sprintf ",\"chain\":[%s]"
        (String.concat "," (List.map hop_to_json chain))
  in
  Printf.sprintf
    "{\"rule\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\
     \"context\":\"%s\",\"fingerprint\":\"%s\",\"message\":\"%s\"%s}"
    (json_escape t.rule) (json_escape t.file) t.line t.col
    (json_escape t.context) (fingerprint t) (json_escape t.message)
    chain_json

let list_to_json ts =
  match ts with
  | [] -> "[]"
  | ts ->
    "[\n  " ^ String.concat ",\n  " (List.map to_json ts) ^ "\n]"
