(** The rmt-lint rule set: determinism and domain-safety checks over
    typedtrees.

    Five rules protect the invariants that Theorem 4's machine checking
    (deterministic [Parsweep] sweeps, seeded attack replay) silently
    assumes of the OCaml sources:

    - {b R1 poly-compare}: [Stdlib.compare] / [=] / [<>] / [min] / [max] /
      [Hashtbl.hash] instantiated at a type that is not structurally a
      base type (int, bool, char, string, float, unit and tuples / lists /
      options / arrays thereof).  Polymorphic comparison on abstract or
      record types ignores dedicated comparators ([Nodeset.compare],
      [Structure.equal], …) and can diverge from them, silently breaking
      canonical orderings.  Comparisons against the constant constructors
      [[]] and [None] are exempt: they only inspect the constructor tag.
    - {b R2 iteration-order leak}: a [Hashtbl.fold] whose result is a
      list that escapes without a dominating [List.sort]* /
      [List.sort_uniq] / [Nodeset.of_list] normalization.  Hash-bucket
      order depends on the hash seed, so such lists change across
      [OCAMLRUNPARAM=R] runs and poison simulator transcripts.
    - {b R3 nondeterminism source}: any use of [Stdlib.Random], [Sys.time]
      or [Unix.gettimeofday]/[Unix.time] outside [lib/base/prng.ml] (the
      one sanctioned seeded generator) and [bench/].
    - {b R4 domain-unsafe state}: a top-level [let] binding of a mutable
      container (ref cell, [Hashtbl.t], [Buffer.t], [Queue.t], [Stack.t],
      [Bytes.t], array).  Module-level mutable state is shared by every
      [Domain] that [Parsweep.map] / [Campaign] fan-out spawns, and is a
      data race unless atomic.  [Atomic.t] and [Domain.DLS] are exempt.
    - {b R5 interface hygiene}: no [Obj.magic] / [Obj.repr] / [Obj.obj];
      the companion missing-[.mli] check lives in {!Lint} (it is a
      filesystem property, not a typedtree one).

    Further rules are {e interprocedural} and live outside this module —
    {b R6 domain-race} in {!Race}, {b R7 theorem4-taint} in {!Taint},
    {b R8 lock-discipline} in {!Lock} (all driven by the cross-module
    {!Callgraph}), and {b R9 automaton-discipline} / {b R10
    communication-budget} in {!Model}, driven by the extracted protocol
    models — but every catalog entry ([explain R9], …) is registered
    here. *)

type meta = {
  id : string;
  name : string;
  summary : string;  (** one line *)
  example : string;  (** one-line bad/fixed sketch, for [rules]/[explain] *)
  details : string;  (** several paragraphs, for [explain] *)
}

val all : meta list
(** Every rule R1..R10, in order.  R6/R7 are implemented in {!Race} and
    {!Taint}, R9/R10 in {!Model}; their catalog entries live here. *)

val find : string -> meta option
(** Look up by id, case-insensitively ([find "r2"] works). *)

val check_structure :
  file:string -> Typedtree.structure -> Finding.t list
(** Run every typedtree rule over one compilation unit.  [file] is the
    source path used in findings and for the R3 exemption list. *)

val r3_exempt : string -> bool
(** True for files where R3 does not apply ([lib/base/prng.ml],
    [lib/workloads/timing.ml], anything under [bench/]). *)
