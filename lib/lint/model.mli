(** Protocol-model extraction: abstract round-machine models of every
    [('s, 'm) Transport.automaton] literal in the tree, and the R9/R10
    rule families that consume them.

    Theorem 4's safety argument treats a protocol as a well-behaved
    round machine: the decision is write-once, every honest-reachable
    message shape is handled, and per-round fan-out is bounded by the
    topology.  This pass makes those obligations checkable.  The
    extraction half ({!extract}) walks a unit's typedtree once and
    records, per function, serializable {e facts}: send-record
    constructions classified by their iteration context, calls with
    their context and whether the caller's inbox is passed along,
    constructor uses and matches, reads/writes of mutable state fields,
    and head-only inbox consumption.  An automaton is any record literal
    with exactly the fields [{init; step; decision}]; its three
    components are resolved against the constructor's local [let]s, the
    unit's module-level bindings, and (at assembly time) the whole
    program.

    The assembly half ({!assemble}) is pure data over the cached
    fragments — it runs on the warm path without re-reading any
    typedtree — and produces one {!protocol} per automaton literal plus
    one {!helper} entry per send-producing function (so [Flood.relay]'s
    [|inbox|·deg(v)] classification is visible even though flood.ml
    defines no automaton itself), together with the R9/R10 findings.

    {2 The symbolic send bound}

    A per-activation bound is a vector of coefficients over
    [{1, deg(v), n, |inbox|, |inbox|·deg(v)}].  Classification is by
    iteration context: a send record built outside any iteration counts
    as a constant; inside a fold over [Graph.neighbors] as
    out-degree-linear; inside an iterator over the step's [inbox] as
    inbox-linear; over a topology-derived local list (Dolev's
    node-disjoint routes) as [n]-linear — a deliberate coarse cap,
    sound for lists of disjoint node sets; and inside a loop, recursion,
    or an unclassifiable iterator as unbounded.  Calls compose by
    context multiplication ([broadcast] under an inbox iterator is
    [|inbox|·deg(v)]), and a callee's inbox coefficients survive only
    when the caller passes its own inbox through.  {!concretize} turns
    the vector into a per-round message count for a concrete instance;
    [test/net/test_cost_bound.ml] replays every protocol and checks
    [Transport.stats] against it round by round.

    {2 Rules}

    - {b R9 automaton discipline}: a step-reachable function that
      assigns a decision field the [decision] function reads without
      guarding on a read of that field (write-once violation), or
      assigns it a literal [None] (decision reset); a [step] that
      consumes only the head of its inbox ([Naive.first_delivery], the
      pinned strawman); a constructor sent by an honest node but never
      matched by any step-reachable case (handler totality).  Replay
      sensitivity is not a finding: whether [step] reads [~round] and
      whether ingestion is dedup-guarded are surfaced as model fields
      for audit instead.
    - {b R10 communication budget}: an automaton whose init or step
      bound is unbounded.  Bounded protocols are not findings — their
      vectors are emitted in [lint-model.json] and enforced dynamically
      by the cost-bound test. *)

(** Iteration context a send construction or call occurs under. *)
type ctx =
  | Top  (** straight-line code: evaluated at most once per activation *)
  | Inbox  (** inside an iterator over the step's [inbox] *)
  | Deg  (** inside a fold over [Graph.neighbors] *)
  | Inbox_deg  (** inbox iterator and neighbor fold nested *)
  | Nodes  (** iterator over a topology-derived local list or node set *)
  | Unknown  (** loop, recursion, or unclassifiable iterator *)

type call_site = {
  cs_ctx : ctx;
  cs_callee : string;  (** bare local name or canonical [Module.fn] *)
  cs_passes_inbox : bool;
      (** the caller's own [inbox] is an argument of the call *)
  cs_returns_sends : bool;
      (** the application's result type mentions [Transport.send] —
          an unresolvable such call makes the bound unbounded *)
}

(** Serializable per-function facts; the unit of caching. *)
type fn_facts = {
  f_name : string;  (** qualified, e.g. ["Naive.broadcast"] *)
  f_file : string;
  f_line : int;
  f_params : string list;
  f_sends : (ctx * int) list;  (** send-record constructions by context *)
  f_calls : call_site list;
  f_constructs : (string * string) list;
      (** (result-type head, constructor) for non-stdlib constructors *)
  f_matches : (string * string) list;  (** same, for pattern matches *)
  f_writes : (string * bool) list;
      (** (mutable field, rhs is a literal [None]) per [<-] assignment *)
  f_reads : string list;  (** mutable fields read *)
  f_inbox_head_only : bool;
      (** every use of [inbox] is a head-only cons match *)
  f_uses_round : bool;
  f_dedup_guard : bool;  (** ingestion guarded by [Hashtbl.mem]/[List.mem] *)
  f_scope : (string * fn_facts) list;
      (** nested function [let]s, bare names (top-level bindings only) *)
}

(** One [{init; step; decision}] literal as recorded at extraction. *)
type automaton_src = {
  a_owner : string;  (** enclosing top-level binding, e.g. ["Naive.make"] *)
  a_file : string;
  a_line : int;
  a_msg_type : string;  (** printed ['m] of the literal's type *)
  a_init : string;
  a_step : string;
  a_decision : string;
      (** component names as written (or synthesized for inline [fun]s),
          resolved at assembly through owner scope, unit, program *)
}

type unit_model = {
  um_source : string;
  um_module : string;
  um_fns : fn_facts list;  (** module-level bindings, qualified names *)
  um_automata : automaton_src list;
}

val extract : source:string -> Typedtree.structure -> unit_model
(** One typedtree walk; everything returned is plain marshalable data. *)

(** Symbolic per-activation send bound:
    [const + deg·deg(v) + nodes·n + inbox·|inbox| + inbox_deg·|inbox|·deg(v)],
    or unbounded. *)
type bound = {
  b_const : int;
  b_deg : int;
  b_nodes : int;
  b_inbox : int;
  b_inbox_deg : int;
  b_unbounded : bool;
}

val bound_to_string : bound -> string
(** ["2·deg(v) + |inbox|"], ["0"], ["unbounded"]. *)

val concretize :
  bound -> num_nodes:int -> sum_deg:int -> max_deg:int -> prev:int -> int
(** Network-wide per-round concretization: summing the per-node bound
    over all [n] nodes gives
    [n·const + const·sum_deg(=2|E|) + nodes·n² + inbox·prev +
    inbox_deg·prev·max_deg], where [prev] is the number of messages
    delivered the previous round (every node's inbox sizes sum to it).
    Saturating; [max_int] when unbounded. *)

type protocol = {
  p_name : string;  (** the constructor binding, e.g. ["Rmt_pka.automaton"] *)
  p_file : string;
  p_line : int;
  p_msg_type : string;
  p_alphabet : string list;
      (** message constructors an honest init/step can send *)
  p_handled : string list;  (** constructors matched by step-reachable code *)
  p_decision_reads : string list;
      (** mutable state fields the [decision] component reads *)
  p_round_sensitive : bool;  (** [step] actually reads [~round] *)
  p_dedup_guarded : bool;
      (** step-reachable ingestion carries a seen-before guard *)
  p_init : bound;
  p_step : bound;
}

type helper = {
  h_name : string;
  h_file : string;
  h_line : int;
  h_bound : bound;  (** per-call send production *)
}

type t = {
  protocols : protocol list;  (** sorted by name *)
  helpers : helper list;  (** send producers only, sorted by name *)
  findings : Finding.t list;  (** R9/R10, sorted *)
}

val assemble : unit_model list -> t
(** Whole-program assembly: resolve helpers through constructor scope →
    unit → program, compute bounds by context multiplication with cycle
    detection, run the R9/R10 checks.  Input order does not matter; the
    result (and {!fingerprint}) is identical under any permutation. *)

val find : t -> string -> protocol option
(** By exact name, bare suffix, or module prefix (case-insensitive). *)

val render_text : ?only:string -> t -> string

val render_json : ?only:string -> t -> string
(** The [lint-model.json] payload: schema line, one object per protocol
    with symbolic and coefficient forms of both bounds, and the helper
    table. *)

val fingerprint : t -> string
(** Digest of the canonical JSON rendering. *)
