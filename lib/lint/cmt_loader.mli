(** Locating and reading [.cmt] typedtree files out of dune's build tree.

    [dune build \@check] leaves one [.cmt] per implementation under
    [_build/default/**/.<lib>.objs/byte/].  The loader walks a build
    directory, reads every [.cmt], and keeps the implementation units
    whose recorded source path falls under one of the requested source
    directories — skipping dune-generated module-alias units
    ([*.ml-gen]).  The companion [.cmti] presence is recorded so the R5
    missing-interface check needs no second pass. *)

type unit_info = {
  cmt_path : string;  (** absolute-ish path to the [.cmt] *)
  source : string;  (** source path recorded at compile time *)
  has_mli : bool;  (** a companion [.cmti] sits next to the [.cmt] *)
  structure : Typedtree.structure;
}

val read_cmt : string -> (unit_info option, string) result
(** Read one [.cmt].  [Ok None] for interface / packed / generated units;
    [Error _] when the file cannot be parsed.  A stale-compiler build
    tree is diagnosed by probing the file's format magic, so the error
    names the expected and found magics and says to rerun
    [dune build \@check] instead of surfacing a raw [Cmi_format]
    exception. *)

val cmt_paths : build_dir:string -> (string list, string) result
(** Every [.cmt] under [build_dir], sorted — the file list the
    digest-first {!Cache} lookup iterates without parsing anything. *)

val under_one_of : string list -> string -> bool
(** Path-prefix membership test used by {!scan}'s [dirs] filter. *)

val scan :
  build_dir:string -> dirs:string list -> (unit_info list, string) result
(** [scan ~build_dir ~dirs] walks [build_dir] recursively and returns
    every implementation unit whose source lives under one of [dirs]
    (path-prefix match on the recorded source path), sorted by source
    path.  Fails when [build_dir] does not exist — run
    [dune build \@check] first. *)
