(** The rmt-lint driver: rules over compilation units, baseline
    filtering, rendering.

    This is the layer both the [rmt_lint] executable and the fixture
    tests call: {!analyze} runs the typedtree rules of {!Rules} plus the
    filesystem half of R5 (missing [.mli]) over loaded units, and
    {!apply_baseline} splits the result against a suppression file. *)

type report = {
  scanned : int;  (** number of compilation units analyzed *)
  findings : Finding.t list;  (** every finding, baselined or not *)
  fresh : Finding.t list;  (** findings not pinned in the baseline *)
  stale : Baseline.entry list;
      (** baseline entries matching no current finding *)
}

val analyze :
  ?require_mli:bool -> Cmt_loader.unit_info list -> Finding.t list
(** Run all rules.  [require_mli] (default [true]) controls the
    missing-interface half of R5. *)

val apply_baseline : Baseline.entry list -> int -> Finding.t list -> report
(** [apply_baseline entries scanned findings] builds the final report. *)

val render_text : report -> string
(** Human-readable report: fresh findings, stale-entry warnings, and a
    one-line verdict. *)

val render_json : report -> string
(** Machine-readable report for the CI artifact: scanned count, every
    finding with its fingerprint, the fresh subset, stale entries. *)
