(** The rmt-lint driver: rules over compilation units, the incremental
    cache, baseline filtering, rendering.

    This is the layer both the [rmt_lint] executable and the fixture
    tests call.  {!scan_cached} walks the build tree digest-first so
    unchanged typedtrees are never re-read; {!store_of} infers (or
    restores from cache) the {!Summary} effect store over the
    whole-program {!Callgraph}; {!findings_of} combines the per-unit
    intraprocedural findings with the store-client passes ({!Lock}
    R4/R8, {!Race} R6, {!Taint} R7); and {!apply_baseline} splits the
    result against a suppression file. *)

type scanned_unit = {
  su_source : string;
  su_has_mli : bool;
  su_intra : Finding.t list;  (** structural findings only, no R5 *)
  su_summary : Callgraph.unit_summary;
  su_model : Model.unit_model;  (** protocol-model fragment for R9/R10 *)
  su_cached : bool;  (** came out of the cache, typedtree never read *)
}

type cache_stats = { lookups : int; hits : int }

val hit_rate : cache_stats -> float
(** Percentage, 0 when nothing was looked up. *)

type report = {
  scanned : int;  (** number of compilation units analyzed *)
  findings : Finding.t list;  (** every finding, baselined or not *)
  fresh : Finding.t list;  (** findings not pinned in the baseline *)
  stale : Baseline.entry list;
      (** baseline entries matching no current finding *)
  cache : cache_stats;
}

val scan_cached :
  cache:Cache.t ->
  build_dir:string ->
  dirs:string list ->
  (scanned_unit list * cache_stats * string, string) result
(** Walk every cmt under [build_dir]: digest, cache lookup, and only on
    a miss read the typedtree, analyze it and store the result back into
    [cache] (mutated in place; the caller decides whether to
    {!Cache.save}).  Returns the units whose recorded source lives under
    one of [dirs], sorted by source path — [dirs] bounds the analysis
    universe, so a test-side sanitizer cannot launder a deliberately
    unguarded library protocol — plus the combined digest key of those
    units for {!store_of}.  Pass {!Cache.empty} for a cold, cache-free
    run. *)

val graph_of : scanned_unit list -> Callgraph.t

val model_of : scanned_unit list -> Model.t
(** Whole-program protocol model ({!Model.assemble} over the cached
    per-unit fragments): the [rmt_lint model] payload and the R9/R10
    findings.  Pure data — reruns on the warm path without reading any
    typedtree. *)

val store_of :
  cache:Cache.t -> key:string -> Callgraph.t -> Summary.store * bool
(** The summary store for [graph], restored from [cache] under [key]
    (the combined digest from {!scan_cached}) when nothing changed;
    [true] on that warm path.  A miss runs {!Summary.infer} and stores
    the effects back. *)

val findings_of :
  ?require_mli:bool ->
  scanned_unit list ->
  Summary.store ->
  Finding.t list
(** All rules: cached intraprocedural findings, the filesystem half of
    R5 (unless [require_mli] is false), the store clients (R4/R8
    {!Lock}, R6 {!Race}, R7 {!Taint}), and the protocol-model rules
    (R9/R10 via {!model_of}). *)

val analyze :
  ?require_mli:bool -> Cmt_loader.unit_info list -> Finding.t list
(** Uncached convenience composition of the above over pre-loaded units
    — the fixture-test entry point. *)

val apply_baseline :
  ?cache:cache_stats -> Baseline.entry list -> int -> Finding.t list -> report
(** [apply_baseline entries scanned findings] builds the final report. *)

val render_text : report -> string
(** Human-readable report: fresh findings (with call chains), stale
    entry warnings, the cache reuse line, and a one-line verdict. *)

val render_json : report -> string
(** Machine-readable report for the CI artifact: scanned count, cache
    stats, every finding with its fingerprint, the fresh subset, stale
    entries. *)
