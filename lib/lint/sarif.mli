(** SARIF 2.1.0 rendering of a lint report, plus the vendored JSON value
    type it is built from (the toolchain ships no JSON library).

    One run, {b rmt-lint} as the driver with the full {!Rules} catalog,
    one result per finding carrying its stable fingerprint (under
    [partialFingerprints.rmtLint/v2]), its location, its
    interprocedural call chain as a [codeFlow], and — when the baseline
    pins it — a [suppressions] entry quoting the justification, so
    uploaded dashboards show pinned findings as suppressed rather than
    open.  When the {!Summary} store is supplied, every thread-flow hop
    is annotated with the hop function's effect summary.  R6/R7/R8
    report at level [error], the intraprocedural rules at [warning]. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val render : t -> string
  (** Deterministic two-space-indented rendering, trailing newline. *)

  val parse : string -> (t, string) result

  val member : string -> t -> t option
  val to_list : t -> t list option
  val to_string : t -> string option
end

val schema_uri : string
val sarif_version : string
(** ["2.1.0"]. *)

val tool_name : string
val fingerprint_key : string
(** The [partialFingerprints] key, ["rmtLint/v2"]. *)

val document :
  ?store:Summary.store -> entries:Baseline.entry list -> Lint.report -> Json.t

val render :
  ?store:Summary.store -> entries:Baseline.entry list -> Lint.report -> string
(** [document] rendered to text — the payload CI uploads. *)
