(** A single static-analysis finding.

    Findings are value types: the rule that fired, where it fired, the
    nearest enclosing top-level binding (the [context], used to keep
    baseline fingerprints stable under line drift), and a human-readable
    message.  The {!fingerprint} is what baseline files record: it hashes
    the rule, file, context and message — but {e not} the line number — so
    unrelated edits above a pinned finding do not invalidate the pin. *)

type t = {
  rule : string;  (** rule identifier, ["R1"] .. ["R5"] *)
  file : string;  (** source path as recorded in the [.cmt] *)
  line : int;
  col : int;
  context : string;  (** enclosing top-level binding, or ["module"] *)
  message : string;
}

val make :
  rule:string ->
  file:string ->
  ?line:int ->
  ?col:int ->
  ?context:string ->
  string ->
  t

val fingerprint : t -> string
(** 12 hex characters, stable across pure line moves (derived from rule,
    file, context and message only). *)

val compare : t -> t -> int
(** Order by (file, line, col, rule, message): report order. *)

val to_text : t -> string
(** [file:line:col: [rule] message  (in context)] — one line. *)

val to_json : t -> string
(** A self-contained JSON object (no trailing newline). *)

val list_to_json : t list -> string
(** JSON array of {!to_json} objects, one per line. *)
