(** A single static-analysis finding.

    Findings are value types: the rule that fired, where it fired, the
    nearest enclosing top-level binding (the [context], used to keep
    baseline fingerprints stable under line drift), a human-readable
    message, and — for the interprocedural rules R6/R7 — the witnessing
    call {!chain}.  The {!fingerprint} is what baseline files record: it
    hashes the rule, the {e normalized repo-relative} file path, context,
    message and the chain's function names — but {e not} line numbers — so
    unrelated edits above a pinned finding do not invalidate the pin,
    while two findings in different files (or along different call
    chains) can never collide. *)

type hop = {
  hop_fn : string;  (** qualified function name, e.g. ["Rmt_pka.ingest"] *)
  hop_file : string;  (** source path of the defining unit *)
  hop_line : int;  (** line of the definition (or call site) *)
}

type t = {
  rule : string;  (** rule identifier, ["R1"] .. ["R7"] *)
  file : string;  (** source path as recorded in the [.cmt] *)
  line : int;
  col : int;
  context : string;  (** enclosing top-level binding, or ["module"] *)
  message : string;
  chain : hop list;
      (** interprocedural witness path (source first, sink last); empty
          for the intraprocedural rules *)
}

val make :
  rule:string ->
  file:string ->
  ?line:int ->
  ?col:int ->
  ?context:string ->
  ?chain:hop list ->
  string ->
  t

val normalize_path : string -> string
(** Repo-relative normal form: strips leading [./] and
    [_build/default/], collapses duplicate slashes, forces forward
    slashes.  Used by {!fingerprint} and the SARIF emitter. *)

val fingerprint : t -> string
(** 12 hex characters, stable across pure line moves (derived from rule,
    normalized file path, context, message and chain function names —
    never line numbers). *)

val compare : t -> t -> int
(** Order by (file, line, col, rule, message, chain): report order. *)

val chain_to_text : hop list -> string
(** ["A.f (file:12) -> B.g (file:3)"]. *)

val to_text : t -> string
(** [file:line:col: [rule] message  (in context)] — one line, plus an
    indented [call chain:] line when the finding carries one. *)

val to_json : t -> string
(** A self-contained JSON object (no trailing newline). *)

val list_to_json : t list -> string
(** JSON array of {!to_json} objects, one per line. *)
