(** R6 — the Domain-race pass.

    Flags, at every fan-out call site ({!Callgraph.fanout_names}), (a)
    mutable containers captured by the closure from outside itself, and
    (b) top-level mutable state reachable — transitively through the
    cross-module call graph — from anything the closure calls.  The
    second kind of finding carries the witnessing call chain.
    Domain-local allocations are exempt by construction;
    [lib/workloads/parsweep.ml] (the sanctioned fan-out engine, whose
    disjoint-index writes this flow-insensitive pass cannot justify) is
    exempt by file.  Lock-protected globals and barrier-disciplined
    captures are exempt by the {!Summary} store's analysis — their
    residual obligations belong to R8 ({!Lock}). *)

val rule : string
(** ["R6"]. *)

val exempt_file : string -> bool

val analyze : Summary.store -> Finding.t list
(** Sorted by {!Finding.compare}. *)
