(** Bottom-up per-function effect summaries — the interprocedural
    passes' shared substrate.

    {!infer} runs three monotone fixpoints over {!Fixpoint}'s SCC
    condensation of the call graph:

    - {e instantiation sets}: every higher-order argument site
      contributes its resolved references to the callee's [s_inst];
      arguments mentioning a caller parameter additionally forward the
      caller's own set.  This is what makes R7 see through a [~decider]
      parameter.
    - {e effect propagation}: the boolean effects are or-folded over
      resolved callees {e and} instantiation members, callees-first.
    - {e locked-only}: a least fixpoint over open (non-critical-section)
      referrers; a mutable global whose every open reference comes from
      a locked-only function is {!lock_protected} — the analyzed
      replacement for the old hc.ml carve-outs.

    All three are deterministic and independent of input order; the
    property is pinned by test/lint/test_summary_order.ml. *)

type effects = {
  s_fn : string;
  s_file : string;
  s_line : int;
  s_mutates : bool;  (** touches top-level mutable state, transitively *)
  s_nondet : bool;  (** PRNG / wall-clock, transitively *)
  s_source : bool;  (** binds adversary-controlled data (direct) *)
  s_sinks : int;  (** decision-sink sites in the body (direct) *)
  s_cover : bool;  (** reaches a cover/solvability sanitizer *)
  s_conn : bool;  (** reaches a positive-connectivity sanitizer *)
  s_locks : bool;  (** acquires a mutex, transitively *)
  s_heavy : bool;  (** reaches allocation-heavy compute, transitively *)
  s_spawns : bool;  (** fans out to Domains, transitively *)
  s_may_raise : bool;  (** reaches a raise primitive, transitively *)
  s_locked_only : bool;
      (** every reference to this function is under a lock *)
  s_inst : string list;
      (** resolved functions flowing into higher-order parameters *)
}

type store

val infer : Callgraph.t -> store
val of_effects : Callgraph.t -> effects list -> store
(** Rebuild a store from cached effect records (the {!Cache} warm path);
    only the cheap protected-global index is recomputed. *)

val graph : store -> Callgraph.t
val find : store -> string -> effects option
val all : store -> effects list
(** Sorted by function name. *)

val cover_sanitized : store -> string -> bool
val conn_sanitized : store -> string -> bool
(** Family-sanitization membership tests for {!Taint}; [false] for
    functions outside the graph. *)

val lock_protected : store -> string -> bool
(** The named mutable-global binding is referenced at least once and
    every open reference comes from a locked-only function. *)

val lock_wrapper : store -> string -> bool
(** The reference names [Mutex.protect] or resolves to a function that
    directly acquires a mutex; closures passed to it are critical
    sections. *)

val barrier_disciplined : Callgraph.fanout -> bool
(** The fan-out closure references a phase barrier (Gate/Barrier/
    Condition), so its captures follow the single-writer-per-phase
    protocol R8 verifies instead of R6 flagging them outright. *)

val indexed_capture_kind : string -> bool
(** [array] and [bytes] captures are indexable per-domain and allowed
    under a barrier; [ref]/[Hashtbl.t]/... are not. *)

val cover_sanitizers : string list
val connectivity_sanitizers : string list
(** The Theorem-4 sanitizer families ({!Taint} owns the rationale). *)

val heavy_names : string list
(** Allocation-heavy compute forbidden while the global mutex is held. *)

val is_heavy_name : string -> bool
val is_may_raise_name : string -> bool
val is_raw_lock_name : string -> bool
val is_unlock_name : string -> bool
val is_protect_name : string -> bool
val is_barrier_name : string -> bool
(** Name-class predicates shared with the {!Lock} pass's source-order
    walk. *)

val flags : effects -> string list
(** The set effect bits as short human-readable labels ("mutates",
    "cover-sanitized", ...), for rendering and SARIF thread-flow
    messages. *)

val fingerprint : effects -> string
(** 12-hex digest of the summary's observable content (name, file,
    flags, instantiations). *)

val store_fingerprint : store -> string

val render_text : ?only:string -> store -> string
val render_json : ?only:string -> store -> string
(** [only] restricts to one module (matched against the function-name
    prefix or the source file's module name). *)
