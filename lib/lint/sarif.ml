(* SARIF 2.1.0 emission — one run, rmt-lint as the driver, every rule
   in the catalog, one result per finding with its fingerprint, its
   location, its interprocedural call chain as a codeFlow, and a
   suppression when the baseline pins it.  CI uploads the file through
   github/codeql-action/upload-sarif, which turns results into PR
   annotations.

   The vendored [Json] value type exists because the toolchain carries
   no JSON library; the parser half is only exercised by the schema
   test, but living next to the renderer keeps the two in sync. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let render t =
    let buf = Buffer.create 4096 in
    let rec go indent t =
      match t with
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (if b then "true" else "false")
      | Int i -> Buffer.add_string buf (string_of_int i)
      | Float f -> Buffer.add_string buf (Printf.sprintf "%.17g" f)
      | Str s ->
        Buffer.add_char buf '"';
        escape buf s;
        Buffer.add_char buf '"'
      | Arr [] -> Buffer.add_string buf "[]"
      | Arr items ->
        let pad = String.make (indent + 2) ' ' in
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf pad;
            go (indent + 2) item)
          items;
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make indent ' ');
        Buffer.add_char buf ']'
      | Obj [] -> Buffer.add_string buf "{}"
      | Obj fields ->
        let pad = String.make (indent + 2) ' ' in
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf pad;
            Buffer.add_char buf '"';
            escape buf k;
            Buffer.add_string buf "\": ";
            go (indent + 2) v)
          fields;
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make indent ' ');
        Buffer.add_char buf '}'
    in
    go 0 t;
    Buffer.add_char buf '\n';
    Buffer.contents buf

  exception Parse_error of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Parse_error (Printf.sprintf "at %d: %s" !pos msg)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %c" c)
    in
    let literal word value =
      if
        !pos + String.length word <= n
        && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        value
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
           | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
           | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
           | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
           | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
           | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
           | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
           | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
           | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
           | Some 'u' ->
             advance ();
             if !pos + 4 > n then fail "truncated \\u escape";
             let hex = String.sub s !pos 4 in
             pos := !pos + 4;
             (match int_of_string_opt ("0x" ^ hex) with
              | None -> fail "bad \\u escape"
              | Some code ->
                (* ASCII passthrough; anything higher keeps its escape
                   spelled out — enough fidelity for SARIF checking. *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else Buffer.add_string buf ("\\u" ^ hex));
             go ()
           | _ -> fail "bad escape")
        | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents buf
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [ parse_value () ] in
          let rec go () =
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              items := parse_value () :: !items;
              go ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ]"
          in
          go ();
          Arr (List.rev !items)
        end
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            (k, parse_value ())
          in
          let fields = ref [ field () ] in
          let rec go () =
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              fields := field () :: !fields;
              go ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or }"
          in
          go ();
          Obj (List.rev !fields)
        end
      | Some _ ->
        let start = !pos in
        let num_char c =
          match c with
          | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
          | _ -> false
        in
        while (match peek () with Some c -> num_char c | None -> false) do
          advance ()
        done;
        if !pos = start then fail "unexpected character";
        let tok = String.sub s start (!pos - start) in
        (match int_of_string_opt tok with
         | Some i -> Int i
         | None ->
           (match float_of_string_opt tok with
            | Some f -> Float f
            | None -> fail ("bad number " ^ tok)))
    in
    match parse_value () with
    | v ->
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing input at %d" !pos)
      else Ok v
    | exception Parse_error e -> Error e

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None

  let to_list = function Arr items -> Some items | _ -> None
  let to_string = function Str s -> Some s | _ -> None
end

let schema_uri = "https://json.schemastore.org/sarif-2.1.0.json"
let sarif_version = "2.1.0"
let tool_name = "rmt-lint"
let fingerprint_key = "rmtLint/v2"

(* R9 joins the error tier: an automaton that breaks the round-machine
   contract invalidates Theorem 4's safety argument outright.  R10 stays
   a warning — an unbounded budget blocks the static cost model but not
   safety. *)
let level_of_rule id =
  match id with "R6" | "R7" | "R8" | "R9" -> "error" | _ -> "warning"

let rule_ids = List.map (fun (m : Rules.meta) -> m.id) Rules.all

let rules_json =
  Json.Arr
    (List.map
       (fun (m : Rules.meta) ->
         Json.Obj
           [
             ("id", Json.Str m.id);
             ("name", Json.Str m.name);
             ("shortDescription", Json.Obj [ ("text", Json.Str m.summary) ]);
             ("fullDescription", Json.Obj [ ("text", Json.Str m.details) ]);
             ( "defaultConfiguration",
               Json.Obj [ ("level", Json.Str (level_of_rule m.id)) ] );
           ])
       Rules.all)

let physical_location ~file ~line ~col =
  Json.Obj
    [
      ( "artifactLocation",
        Json.Obj
          [
            ("uri", Json.Str (Finding.normalize_path file));
            ("uriBaseId", Json.Str "SRCROOT");
          ] );
      ( "region",
        Json.Obj
          [
            ("startLine", Json.Int (max 1 line));
            ("startColumn", Json.Int (max 1 (col + 1)));
          ] );
    ]

(* When the summary store is available, each thread-flow hop carries
   the hop function's effect summary — the reviewer sees at a glance
   why the chain is admitted (no sanitizer bit) and what the hop
   contributes (source, sink, mutates). *)
let hop_message ?store (h : Finding.hop) =
  match store with
  | None -> h.hop_fn
  | Some st ->
    (match Summary.find st h.hop_fn with
     | Some e when Summary.flags e <> [] ->
       Printf.sprintf "%s [%s]" h.hop_fn
         (String.concat ", " (Summary.flags e))
     | _ -> h.hop_fn)

let code_flow ?store chain =
  Json.Obj
    [
      ( "threadFlows",
        Json.Arr
          [
            Json.Obj
              [
                ( "locations",
                  Json.Arr
                    (List.map
                       (fun (h : Finding.hop) ->
                         Json.Obj
                           [
                             ( "location",
                               Json.Obj
                                 [
                                   ( "physicalLocation",
                                     physical_location ~file:h.hop_file
                                       ~line:h.hop_line ~col:0 );
                                   ( "message",
                                     Json.Obj
                                       [
                                         ( "text",
                                           Json.Str (hop_message ?store h) );
                                       ] );
                                 ] );
                           ])
                       chain) );
              ];
          ] );
    ]

let message_text (f : Finding.t) =
  if f.chain = [] then f.message
  else f.message ^ "; call chain: " ^ Finding.chain_to_text f.chain

let result_json ?store entries (f : Finding.t) =
  let fp = Finding.fingerprint f in
  let suppression =
    List.find_opt
      (fun (e : Baseline.entry) ->
        String.equal e.rule f.rule && String.equal e.fingerprint fp)
      entries
  in
  let base =
    [
      ("ruleId", Json.Str f.rule);
      ( "ruleIndex",
        Json.Int
          (match List.find_index (String.equal f.rule) rule_ids with
           | Some i -> i
           | None -> -1) );
      ("level", Json.Str (level_of_rule f.rule));
      ("message", Json.Obj [ ("text", Json.Str (message_text f)) ]);
      ( "locations",
        Json.Arr
          [
            Json.Obj
              [
                ( "physicalLocation",
                  physical_location ~file:f.file ~line:f.line ~col:f.col );
              ];
          ] );
      ("partialFingerprints", Json.Obj [ (fingerprint_key, Json.Str fp) ]);
    ]
  in
  let base =
    if f.chain = [] then base
    else base @ [ ("codeFlows", Json.Arr [ code_flow ?store f.chain ]) ]
  in
  let base =
    match suppression with
    | None -> base
    | Some e ->
      base
      @ [
          ( "suppressions",
            Json.Arr
              [
                Json.Obj
                  [
                    ("kind", Json.Str "external");
                    ("justification", Json.Str e.justification);
                  ];
              ] );
        ]
  in
  Json.Obj base

let document ?store ~entries (report : Lint.report) =
  Json.Obj
    [
      ("$schema", Json.Str schema_uri);
      ("version", Json.Str sarif_version);
      ( "runs",
        Json.Arr
          [
            Json.Obj
              [
                ( "tool",
                  Json.Obj
                    [
                      ( "driver",
                        Json.Obj
                          [
                            ("name", Json.Str tool_name);
                            ( "informationUri",
                              Json.Str
                                "https://github.com/rmt-pka/rmt#linting" );
                            ("rules", rules_json);
                          ] );
                    ] );
                ( "results",
                  Json.Arr
                    (List.map (result_json ?store entries) report.findings) );
              ];
          ] );
    ]

let render ?store ~entries report =
  Json.render (document ?store ~entries report)
