(* Deterministic SCC condensation + monotone fixpoint over string-named
   graph nodes.

   Tarjan emits strongly connected components in reverse topological
   order of the condensation — every component a node can reach is
   completed before the node's own component — which is exactly the
   bottom-up order {!Summary} needs: callees are summarized before their
   callers, and only genuinely recursive cycles iterate.

   Order independence is by construction, not by luck: the node list is
   sorted and deduplicated on entry, successor lists are sorted,
   deduplicated and restricted to known nodes, and members inside each
   component are iterated in sorted order.  The qcheck property test
   (test/lint/test_summary_order.ml) shuffles inputs and pins this. *)

let normalize ~nodes ~succs =
  let nodes = List.sort_uniq String.compare nodes in
  let known = Hashtbl.create (List.length nodes * 2) in
  List.iter (fun n -> Hashtbl.replace known n ()) nodes;
  let out = Hashtbl.create (List.length nodes * 2) in
  List.iter
    (fun n ->
      let ss =
        succs n
        |> List.filter (fun s -> Hashtbl.mem known s)
        |> List.sort_uniq String.compare
      in
      Hashtbl.replace out n ss)
    nodes;
  (nodes, fun n -> try Hashtbl.find out n with Not_found -> [])

let scc ~nodes ~succs =
  let nodes, succs = normalize ~nodes ~succs in
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let next = ref 0 in
  let components = ref [] in
  let rec visit v =
    Hashtbl.replace index v !next;
    Hashtbl.replace lowlink v !next;
    incr next;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          visit w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succs v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if String.equal w v then w :: acc else pop (w :: acc)
      in
      components := List.sort String.compare (pop []) :: !components
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then visit v) nodes;
  List.rev !components

let solve ~nodes ~succs ~equal ~init ~transfer =
  let nodes', succs' = normalize ~nodes ~succs in
  let state = Hashtbl.create 128 in
  List.iter (fun n -> Hashtbl.replace state n (init n)) nodes';
  let get n =
    match Hashtbl.find_opt state n with
    | Some v -> v
    | None -> init n
  in
  List.iter
    (fun component ->
      (* Singleton components without a self-loop need exactly one
         transfer; cycles iterate to their (monotone) fixpoint. *)
      let cyclic =
        match component with
        | [ only ] -> List.exists (String.equal only) (succs' only)
        | _ -> true
      in
      let step () =
        List.fold_left
          (fun changed n ->
            let v' = transfer ~get n in
            if equal v' (get n) then changed
            else begin
              Hashtbl.replace state n v';
              true
            end)
          false component
      in
      if not cyclic then ignore (step ())
      else begin
        let continue = ref true in
        while !continue do
          continue := step ()
        done
      end)
    (scc ~nodes ~succs);
  get
