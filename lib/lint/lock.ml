(* R4 + R8 — lock discipline over the summary store.

   R4 (domain-unsafe state) moved here from the intraprocedural walk:
   a top-level mutable binding is flagged unless the summary store can
   prove it lock-protected — referenced at least once, with every open
   (outside-critical-section) reference coming from a locked-only
   function.  That proof is exactly what the old hand-written
   [r4_sanctioned]/[sanctioned_target] hc.ml carve-outs asserted; now
   hc.ml passes on its own merits and a regression there (say, a new
   entry point that forgets [locked]) is a finding, not a silent hole.

   R8 verifies the two concurrency protocols the repository depends on:

   - {e compute-outside-lock} (Hc): a closure passed to a lock-acquiring
     wrapper must not transitively re-acquire a mutex, and must not
     reach allocation-heavy compute (Structure.restrict/join, the
     solvability core, the fan-out engines) — the whole point of the
     probe/compute/store split is that enumeration happens unlocked;
   - {e raw-lock hygiene} (Mcast's Gate): between a bare [Mutex.lock]
     and its [Mutex.unlock], walked in source order, no may-raise call
     may appear unless the region uses [Fun.protect] — an exception
     there would leave the lock held and deadlock the phase barrier;
   - {e barrier-capture discipline}: captures shared by a Domain.spawn
     closure that synchronizes on a phase barrier (Gate/Barrier/
     Condition) must be per-domain indexable (array/bytes) — the
     single-writer-per-phase protocol has no story for a shared ref or
     Hashtbl.  R6 stands down on such closures (the barrier is the
     synchronization it cannot see); R8 owns the residual obligation. *)

let rule = "R8"

let last_component name =
  match List.rev (String.split_on_char '.' name) with
  | last :: _ -> last
  | [] -> name

let r4_message kind =
  if String.equal kind "record with mutable fields" then
    "top-level record with mutable fields is shared across Domain \
     fan-out; allocate per call or use Atomic"
  else
    Printf.sprintf
      "top-level mutable state (%s) is shared across Domain fan-out; \
       allocate per call or use Atomic"
      kind

let analyze_r4 store =
  let graph = Summary.graph store in
  List.filter_map
    (fun (f : Callgraph.fn_summary) ->
      match f.mutable_global with
      | Some kind when not (Summary.lock_protected store f.fn_name) ->
        Some
          (Finding.make ~rule:"R4" ~file:f.fn_file ~line:f.fn_line
             ~context:(last_component f.fn_name)
             (r4_message kind))
      | _ -> None)
    (Callgraph.functions graph)

(* One critical-section obligation: the refs of a closure passed to a
   lock-acquiring wrapper. *)
let check_crit store (h : Callgraph.ho_arg) add =
  let graph = Summary.graph store in
  let effects_of name =
    match Callgraph.resolve graph name with
    | None -> None
    | Some q -> Summary.find store q
  in
  List.iter
    (fun r ->
      let reacquires =
        Summary.is_raw_lock_name r
        || Names.qualified_matches [ "Mutex.protect" ] r
        ||
        match effects_of r with
        | Some e -> e.Summary.s_locks
        | None -> false
      in
      if reacquires then
        add ~line:h.ho_line
          (Printf.sprintf
             "critical section passed to %s re-acquires a mutex via %s; \
              the global lock is not re-entrant and this deadlocks"
             h.ho_callee r);
      let heavy =
        Summary.is_heavy_name r
        ||
        match effects_of r with
        | Some e -> e.Summary.s_heavy || e.Summary.s_spawns
        | None -> false
      in
      if heavy then
        add ~line:h.ho_line
          (Printf.sprintf
             "critical section passed to %s reaches allocation-heavy \
              compute via %s; probe under the lock, compute outside, \
              re-lock to store"
             h.ho_callee r))
    h.ho_refs

(* Source-order walk over a function's references: between a raw
   Mutex.lock and its unlock, a may-raise reference with no Fun.protect
   in the region leaves the lock held on the exception path. *)
let check_raw_lock store (f : Callgraph.fn_summary) add =
  let graph = Summary.graph store in
  let may_raise name =
    Summary.is_may_raise_name name
    ||
    match Callgraph.resolve graph name with
    | None -> false
    | Some q ->
      (match Summary.find store q with
       | Some e -> e.Summary.s_may_raise
       | None -> false)
  in
  let held = ref false in
  let risk = ref None in
  let protected_region = ref false in
  let flush () =
    (match (!risk, !protected_region) with
     | Some (r : Callgraph.ref_site), false ->
       add ~line:r.ref_line
         (Printf.sprintf
            "mutex held across may-raise call %s with no Fun.protect; \
             an exception here leaves the lock held and deadlocks the \
             next acquirer"
            r.ref_name)
     | _ -> ());
    risk := None;
    protected_region := false
  in
  List.iter
    (fun (r : Callgraph.ref_site) ->
      if Summary.is_raw_lock_name r.ref_name then begin
        if !held then flush ();
        held := true
      end
      else if Summary.is_unlock_name r.ref_name then begin
        if !held then flush ();
        held := false
      end
      else if !held then begin
        if Summary.is_protect_name r.ref_name then protected_region := true
        else if !risk = None && may_raise r.ref_name then risk := Some r
      end)
    f.refs;
  if !held then flush ()

let check_barrier_captures (f : Callgraph.fn_summary) add =
  List.iter
    (fun (fo : Callgraph.fanout) ->
      if Summary.barrier_disciplined fo then
        List.iter
          (fun (var, kind) ->
            if not (Summary.indexed_capture_kind kind) then
              add ~line:fo.fan_line
                (Printf.sprintf
                   "closure passed to %s synchronizes on a phase barrier \
                    but captures mutable %s `%s'; the single-writer-per-\
                    phase protocol needs per-domain indexable slots \
                    (array/bytes) or an Atomic"
                   fo.fan_callee kind var))
          fo.captured)
    f.fanouts

let analyze store =
  let graph = Summary.graph store in
  let findings = ref [] in
  List.iter
    (fun (f : Callgraph.fn_summary) ->
      let add ~line message =
        findings :=
          Finding.make ~rule ~file:f.fn_file ~line
            ~context:(last_component f.fn_name)
            message
          :: !findings
      in
      List.iter
        (fun (h : Callgraph.ho_arg) ->
          if Summary.lock_wrapper store h.ho_callee then
            check_crit store h add)
        f.ho_args;
      check_raw_lock store f add;
      check_barrier_captures f add)
    (Callgraph.functions graph);
  analyze_r4 store @ !findings |> List.sort Finding.compare
