(* Bottom-up per-function effect summaries over the call graph.

   Each function gets one {!effects} record — does it mutate top-level
   state, draw nondeterminism, bind adversary-controlled data, decide,
   reach a Theorem-4 sanitizer of either family, acquire locks, reach
   allocation-heavy compute, spawn domains, may-raise — computed over
   {!Fixpoint}'s SCC condensation so that a callee's summary is final
   before any caller reads it and only genuinely recursive cycles
   iterate.  The interprocedural passes (R4 via {!Lock}, R6 {!Race}, R7
   {!Taint}, R8 {!Lock}) are clients of the resulting {!store}; none of
   them re-walks the program.

   Two fixpoints beyond the plain effect propagation:

   - {e instantiation sets} make R7 higher-order aware.  Every
     higher-order argument site recorded by {!Callgraph} contributes the
     argument's resolved references to the callee's [s_inst]; when the
     argument mentions a parameter of the enclosing function, the
     enclosing function's own instantiations flow through as well
     (name-based, so a let-rebinding that shadows the parameter under
     the same name still carries the flow).  Effect propagation then
     treats [s_inst] members as callees, so [Zcpa.automaton]'s [decider]
     parameter is credited with the sanitizers of whatever its callers
     actually pass — discharging the zcpa.ml R7 pin by analysis.

   - {e locked-only} is a least fixpoint over referrers: a function is
     locked-only when it is referenced at least once and every referring
     site is either inside a critical section (a closure passed to a
     lock-acquiring wrapper) or in a function that is itself locked-only.
     A mutable global every open reference to which comes from
     locked-only functions is {e lock-protected} — the analyzed form of
     the old hand-written hc.ml carve-outs.  Initializing to false makes
     unreferenced state unprotected, which is the safe direction. *)

type effects = {
  s_fn : string;
  s_file : string;
  s_line : int;
  s_mutates : bool;
  s_nondet : bool;
  s_source : bool;
  s_sinks : int;
  s_cover : bool;
  s_conn : bool;
  s_locks : bool;
  s_heavy : bool;
  s_spawns : bool;
  s_may_raise : bool;
  s_locked_only : bool;
  s_inst : string list;
}

(* ------------------------------------------------------------------ *)
(* Name classes                                                        *)
(* ------------------------------------------------------------------ *)

(* The Theorem-4 sanitizer families (shared with Taint, which owns the
   prose rationale; Paths.find_simple_path is deliberately absent from
   the connectivity list — a mere claimed path is adversary-
   satisfiable). *)
let cover_sanitizers =
  [
    "Cut.find_rmt_cut";
    "Cut.find_rmt_zpp_cut";
    "Cut.is_rmt_cut";
    "Solvability.is_solvable";
    "Solvability.partial_knowledge";
    "Solvability.ad_hoc";
    "Solvability.feasibility_equal";
    "Structure.mem";
    "Structure.maximal_sets";
    "Subset_enum.connected_supersets";
  ]

let connectivity_sanitizers =
  [
    "Connectivity.connected";
    "Connectivity.connected_avoiding";
    "Connectivity.is_cut";
    "Paths.shortest_path";
    "Flood.trail_ok";
  ]

(* Allocation-heavy compute that must never run while the global
   hash-consing mutex is held: the enumerative core and the fan-out
   engines.  Structure.maximal_sets and friends are NOT here — the
   interning hash functions use them under the lock by design, and they
   are tag reads, not enumeration. *)
let heavy_names =
  [
    "Structure.restrict";
    "Structure.join";
    "Solvability.is_solvable";
    "Solvability.partial_knowledge";
    "Solvability.ad_hoc";
    "Solvability.feasibility_equal";
    "Cut.find_rmt_cut";
    "Cut.find_rmt_zpp_cut";
    "Subset_enum.connected_supersets";
    "Parsweep.map";
    "Parsweep.map_list";
  ]

let lock_acquire_names = [ "Mutex.lock"; "Mutex.protect" ]
let nondet_names = [ "Sys.time"; "Unix.gettimeofday"; "Unix.time" ]

(* Phase barriers that sequence mailbox access in the sharded
   transport: an Mcast-style expression-level Gate, a stdlib Barrier, or
   a bare Condition wait.  Canonicalized reference names match the
   expression-level module too. *)
let barrier_names =
  [ "Gate.await"; "Gate.set"; "Barrier.await"; "Condition.wait" ]

let may_raise_last = [ "failwith"; "invalid_arg"; "raise"; "raise_notrace" ]

let last_component name =
  match String.rindex_opt name '.' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name

let is_cover_name n = Names.qualified_matches cover_sanitizers n
let is_conn_name n = Names.qualified_matches connectivity_sanitizers n
let is_heavy_name n = Names.qualified_matches heavy_names n
let is_lock_acquire_name n = Names.qualified_matches lock_acquire_names n
let is_raw_lock_name n = Names.qualified_matches [ "Mutex.lock" ] n
let is_unlock_name n = Names.qualified_matches [ "Mutex.unlock" ] n
let is_protect_name n = Names.qualified_matches [ "Fun.protect" ] n
let is_barrier_name n = Names.qualified_matches barrier_names n
let is_may_raise_name n = List.mem (last_component n) may_raise_last

let is_nondet_name n =
  String.equal n "Random"
  || String.starts_with ~prefix:"Random." n
  || Names.qualified_matches nondet_names n

let indexed_capture_kind kind =
  String.equal kind "array" || String.equal kind "bytes"

let barrier_disciplined (fo : Callgraph.fanout) =
  List.exists
    (fun (r : Callgraph.ref_site) -> is_barrier_name r.ref_name)
    fo.closure_refs

(* ------------------------------------------------------------------ *)
(* The store                                                           *)
(* ------------------------------------------------------------------ *)

type store = {
  st_graph : Callgraph.t;
  st_effects : (string, effects) Hashtbl.t;
  st_protected : (string, unit) Hashtbl.t;
}

let graph st = st.st_graph
let find st name = Hashtbl.find_opt st.st_effects name

let all st =
  Hashtbl.fold (fun _ e acc -> e :: acc) st.st_effects []
  |> List.sort (fun a b -> String.compare a.s_fn b.s_fn)

let cover_sanitized st name =
  match find st name with Some e -> e.s_cover | None -> false

let conn_sanitized st name =
  match find st name with Some e -> e.s_conn | None -> false

let lock_protected st name = Hashtbl.mem st.st_protected name

(* A reference names a lock-acquiring wrapper when it is Mutex.protect
   itself or resolves to a function that directly acquires — Hc.locked
   is the canonical case.  A closure passed to such a callee runs as a
   critical section. *)
let wrapper_of graph callee =
  Names.qualified_matches [ "Mutex.protect" ] callee
  ||
  match Callgraph.resolve graph callee with
  | None -> false
  | Some q ->
    (match Callgraph.find graph q with
     | None -> false
     | Some f ->
       List.exists
         (fun (r : Callgraph.ref_site) -> is_lock_acquire_name r.ref_name)
         f.refs)

let lock_wrapper st callee = wrapper_of st.st_graph callee

(* ------------------------------------------------------------------ *)
(* Inference                                                           *)
(* ------------------------------------------------------------------ *)

(* [crit_names graph f] — reference names occurring inside closures [f]
   passes to lock-acquiring wrappers.  Name-level: a name used both
   inside and outside the critical closure counts as critical, which
   errs toward protection only when the open use is in the same
   function that already holds the lock discipline. *)
let crit_names_of ~wrapper (f : Callgraph.fn_summary) =
  List.fold_left
    (fun acc (h : Callgraph.ho_arg) ->
      if wrapper h.ho_callee then
        List.fold_left (fun acc r -> r :: acc) acc h.ho_refs
      else acc)
    [] f.ho_args
  |> List.sort_uniq String.compare

(* Referrer index: for every defined function [q], which functions
   reference it at all, and which reference it through an open (non-
   critical) site. *)
let referrer_index graph ~wrapper =
  let any = Hashtbl.create 256 in
  let open_callers = Hashtbl.create 256 in
  List.iter
    (fun (f : Callgraph.fn_summary) ->
      let crit = crit_names_of ~wrapper f in
      let is_crit n = List.exists (String.equal n) crit in
      List.iter
        (fun (r : Callgraph.ref_site) ->
          match Callgraph.resolve graph r.ref_name with
          | None -> ()
          | Some q when String.equal q f.fn_name -> ()
          | Some q ->
            Hashtbl.replace any q ();
            if not (is_crit r.ref_name) then begin
              let prev =
                Option.value (Hashtbl.find_opt open_callers q) ~default:[]
              in
              if not (List.exists (String.equal f.fn_name) prev) then
                Hashtbl.replace open_callers q (f.fn_name :: prev)
            end)
        f.refs)
    (Callgraph.functions graph);
  let referenced q = Hashtbl.mem any q in
  let open_callers q =
    Option.value (Hashtbl.find_opt open_callers q) ~default:[]
    |> List.sort String.compare
  in
  (referenced, open_callers)

let protected_of graph ~locked_only =
  let referenced, open_callers =
    referrer_index graph ~wrapper:(wrapper_of graph)
  in
  let protected_tbl = Hashtbl.create 32 in
  List.iter
    (fun (f : Callgraph.fn_summary) ->
      if f.mutable_global <> None then begin
        let q = f.fn_name in
        if referenced q && List.for_all locked_only (open_callers q) then
          Hashtbl.replace protected_tbl q ()
      end)
    (Callgraph.functions graph);
  protected_tbl

let infer graph =
  let fns = Callgraph.functions graph in
  let nodes = List.map (fun (f : Callgraph.fn_summary) -> f.fn_name) fns in
  (* --- instantiation sets -------------------------------------------- *)
  (* flows: target function -> (caller, resolved argument refs, does the
     argument mention a caller parameter).  The caller's own inst set
     flows into the target exactly when a parameter is mentioned. *)
  let flows = Hashtbl.create 64 in
  List.iter
    (fun (f : Callgraph.fn_summary) ->
      List.iter
        (fun (h : Callgraph.ho_arg) ->
          match Callgraph.resolve graph h.ho_callee with
          | None -> ()
          | Some target ->
            let resolved =
              List.filter_map (Callgraph.resolve graph) h.ho_refs
              |> List.filter (fun q -> not (String.equal q target))
              |> List.sort_uniq String.compare
            in
            let pflow = h.ho_params <> [] in
            if resolved <> [] || pflow then begin
              let prev =
                Option.value (Hashtbl.find_opt flows target) ~default:[]
              in
              Hashtbl.replace flows target
                ((f.fn_name, resolved, pflow) :: prev)
            end)
        f.ho_args)
    fns;
  let inst =
    Fixpoint.solve ~nodes
      ~succs:(fun n ->
        match Hashtbl.find_opt flows n with
        | None -> []
        | Some l -> List.filter_map (fun (c, _, p) -> if p then Some c else None) l)
      ~equal:(List.equal String.equal)
      ~init:(fun _ -> [])
      ~transfer:(fun ~get n ->
        match Hashtbl.find_opt flows n with
        | None -> []
        | Some l ->
          List.concat_map
            (fun (c, resolved, pflow) ->
              if pflow then resolved @ get c else resolved)
            l
          |> List.filter (fun q -> not (String.equal q n))
          |> List.sort_uniq String.compare)
  in
  (* --- effect propagation over callees ∪ inst ------------------------ *)
  let base n =
    match Callgraph.find graph n with
    | None ->
      {
        s_fn = n;
        s_file = "?";
        s_line = 0;
        s_mutates = false;
        s_nondet = false;
        s_source = false;
        s_sinks = 0;
        s_cover = false;
        s_conn = false;
        s_locks = false;
        s_heavy = false;
        s_spawns = false;
        s_may_raise = false;
        s_locked_only = false;
        s_inst = [];
      }
    | Some f ->
      let has p =
        List.exists (fun (r : Callgraph.ref_site) -> p r.ref_name) f.refs
      in
      {
        s_fn = f.fn_name;
        s_file = f.fn_file;
        s_line = f.fn_line;
        s_mutates = f.mutable_global <> None;
        s_nondet = has is_nondet_name;
        s_source = f.inbox_param || f.adversary_types <> [];
        s_sinks = List.length f.sinks;
        s_cover = has is_cover_name;
        s_conn = has is_conn_name;
        s_locks = has is_lock_acquire_name;
        s_heavy = has is_heavy_name;
        s_spawns = f.fanouts <> [];
        s_may_raise = has is_may_raise_name;
        s_locked_only = false;
        s_inst = inst n;
      }
  in
  (* Effects propagate over real call edges only.  Folding [inst] into
     the succs would let a generic combinator (Nodeset.fold, Hashtbl
     wrappers) mix every caller's closures into one summary and leak
     one caller's sanitizer to another — the instantiation hop is
     applied once, below, at the function that receives the argument. *)
  let succs n = Callgraph.callees graph n in
  (* Only the or-folded bits can change across iterations; the rest is
     direct and stable, so equality over them suffices (and keeps the
     analyzer's own R1 polymorphic-compare rule honest). *)
  let effects_equal (a : effects) b =
    Bool.equal a.s_mutates b.s_mutates
    && Bool.equal a.s_nondet b.s_nondet
    && Bool.equal a.s_cover b.s_cover
    && Bool.equal a.s_conn b.s_conn
    && Bool.equal a.s_locks b.s_locks
    && Bool.equal a.s_heavy b.s_heavy
    && Bool.equal a.s_spawns b.s_spawns
    && Bool.equal a.s_may_raise b.s_may_raise
  in
  let eff =
    Fixpoint.solve ~nodes ~succs ~equal:effects_equal ~init:base
      ~transfer:(fun ~get n ->
        List.fold_left
          (fun e c ->
            if String.equal c n then e
            else
              let ce = get c in
              {
                e with
                s_mutates = e.s_mutates || ce.s_mutates;
                s_nondet = e.s_nondet || ce.s_nondet;
                s_cover = e.s_cover || ce.s_cover;
                s_conn = e.s_conn || ce.s_conn;
                s_locks = e.s_locks || ce.s_locks;
                s_heavy = e.s_heavy || ce.s_heavy;
                s_spawns = e.s_spawns || ce.s_spawns;
                s_may_raise = e.s_may_raise || ce.s_may_raise;
              })
          (get n) (succs n))
  in
  (* --- locked-only least fixpoint over open referrers ----------------- *)
  let referenced, open_callers =
    referrer_index graph ~wrapper:(wrapper_of graph)
  in
  let locked_only =
    Fixpoint.solve ~nodes ~succs:open_callers ~equal:Bool.equal
      ~init:(fun _ -> false)
      ~transfer:(fun ~get n ->
        referenced n && List.for_all get (open_callers n))
  in
  let st_effects = Hashtbl.create 256 in
  List.iter
    (fun n ->
      let e = eff n in
      (* The higher-order hop: a guard inside a function flowing into
         one of [n]'s parameters executes as part of [n]'s body, so it
         counts toward [n]'s sanitization — this is what discharges a
         [~decider]-guarded automaton.  One hop only, and only for the
         sanitizer families: or-folding instantiations transitively
         would reintroduce the combinator-mixing leak. *)
      let hop sel = sel e || List.exists (fun i -> sel (eff i)) e.s_inst in
      Hashtbl.replace st_effects n
        {
          e with
          s_cover = hop (fun x -> x.s_cover);
          s_conn = hop (fun x -> x.s_conn);
          s_locked_only = locked_only n;
        })
    nodes;
  let st_protected = protected_of graph ~locked_only in
  { st_graph = graph; st_effects; st_protected }

let of_effects graph effs =
  let st_effects = Hashtbl.create 256 in
  List.iter (fun e -> Hashtbl.replace st_effects e.s_fn e) effs;
  let locked_only n =
    match Hashtbl.find_opt st_effects n with
    | Some e -> e.s_locked_only
    | None -> false
  in
  let st_protected = protected_of graph ~locked_only in
  { st_graph = graph; st_effects; st_protected }

(* ------------------------------------------------------------------ *)
(* Fingerprints and rendering                                          *)
(* ------------------------------------------------------------------ *)

let flags e =
  List.filter_map
    (fun (on, name) -> if on then Some name else None)
    [
      (e.s_mutates, "mutates");
      (e.s_nondet, "nondet");
      (e.s_source, "source");
      (e.s_sinks > 0, "sink");
      (e.s_cover, "cover-sanitized");
      (e.s_conn, "connectivity-sanitized");
      (e.s_locks, "locks");
      (e.s_heavy, "heavy");
      (e.s_spawns, "spawns");
      (e.s_may_raise, "may-raise");
      (e.s_locked_only, "locked-only");
    ]

let fingerprint e =
  let payload =
    String.concat "|"
      ([ e.s_fn; Finding.normalize_path e.s_file; string_of_int e.s_sinks ]
      @ flags e @ e.s_inst)
  in
  String.sub (Digest.to_hex (Digest.string payload)) 0 12

let store_fingerprint st =
  let payload =
    all st |> List.map fingerprint |> String.concat "\n"
  in
  String.sub (Digest.to_hex (Digest.string payload)) 0 12

let selected ?only st =
  let keep e =
    match only with
    | None -> true
    | Some m ->
      String.starts_with ~prefix:(m ^ ".") e.s_fn
      || String.equal (Names.module_of_source e.s_file) m
  in
  List.filter keep (all st)

let render_text ?only st =
  let buf = Buffer.create 2048 in
  let es = selected ?only st in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%s (%s:%d) [%s]\n" e.s_fn
           (Finding.normalize_path e.s_file)
           e.s_line (fingerprint e));
      let fl = flags e in
      if fl <> [] then
        Buffer.add_string buf
          (Printf.sprintf "  effects: %s\n" (String.concat ", " fl));
      if e.s_inst <> [] then
        Buffer.add_string buf
          (Printf.sprintf "  inst: %s\n" (String.concat ", " e.s_inst)))
    es;
  Buffer.add_string buf
    (Printf.sprintf "%d function summarie(s), store fingerprint %s\n"
       (List.length es) (store_fingerprint st));
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_json ?only st =
  let es = selected ?only st in
  let one e =
    let b g = if g then "true" else "false" in
    Printf.sprintf
      "{\"fn\": \"%s\", \"file\": \"%s\", \"line\": %d, \
       \"fingerprint\": \"%s\", \"mutates\": %s, \"nondet\": %s, \
       \"source\": %s, \"sinks\": %d, \"cover_sanitized\": %s, \
       \"connectivity_sanitized\": %s, \"locks\": %s, \"heavy\": %s, \
       \"spawns\": %s, \"may_raise\": %s, \"locked_only\": %s, \
       \"inst\": [%s]}"
      (json_escape e.s_fn)
      (json_escape (Finding.normalize_path e.s_file))
      e.s_line (fingerprint e) (b e.s_mutates) (b e.s_nondet) (b e.s_source)
      e.s_sinks (b e.s_cover) (b e.s_conn) (b e.s_locks) (b e.s_heavy)
      (b e.s_spawns) (b e.s_may_raise) (b e.s_locked_only)
      (String.concat ", "
         (List.map (fun i -> "\"" ^ json_escape i ^ "\"") e.s_inst))
  in
  Printf.sprintf
    "{\n\
     \  \"schema\": \"rmt-lint-summaries/1\",\n\
     \  \"store_fingerprint\": \"%s\",\n\
     \  \"functions\": [\n    %s\n  ]\n\
     }\n"
    (store_fingerprint st)
    (String.concat ",\n    " (List.map one es))
