(** Baseline (suppression) files for {!Rules} findings.

    A baseline pins known, justified findings so that the linter only
    fails on {e new} ones.  The format is line-oriented text, designed to
    be reviewed in diffs:

    {v
    # comment
    <rule> <fingerprint> <file> # justification
    v}

    The fingerprint is {!Finding.fingerprint} — stable under line drift —
    and the file path is informational (matching is by rule +
    fingerprint).  Every entry should carry a justification; [save]
    writes a [JUSTIFY:] placeholder that a reviewer is expected to
    replace. *)

type entry = {
  rule : string;
  fingerprint : string;
  file : string;
  justification : string;
}

val load : string -> (entry list, string) result
(** Parse a baseline file.  A missing file is an error; an empty or
    comment-only file is [Ok []]. *)

val save : string -> Finding.t list -> unit
(** Write a baseline pinning exactly [findings], preserving nothing from
    any previous file.  New entries get a [JUSTIFY: ...] placeholder. *)

val partition :
  entry list -> Finding.t list -> Finding.t list * entry list
(** [partition entries findings] is [(fresh, stale)]: the findings not
    pinned by any entry, and the entries matching no current finding. *)
