type report = {
  scanned : int;
  findings : Finding.t list;
  fresh : Finding.t list;
  stale : Baseline.entry list;
}

let analyze ?(require_mli = true) units =
  let per_unit (u : Cmt_loader.unit_info) =
    let structural =
      Rules.check_structure ~file:u.Cmt_loader.source u.Cmt_loader.structure
    in
    if require_mli && not u.Cmt_loader.has_mli then
      Finding.make ~rule:"R5" ~file:u.Cmt_loader.source
        "module has no .mli interface; determinism contracts must be \
         documented and representations kept private"
      :: structural
    else structural
  in
  List.concat_map per_unit units |> List.sort Finding.compare

let apply_baseline entries scanned findings =
  let fresh, stale = Baseline.partition entries findings in
  { scanned; findings; fresh; stale }

let render_text r =
  let buf = Buffer.create 512 in
  List.iter
    (fun f -> Buffer.add_string buf (Finding.to_text f ^ "\n"))
    r.fresh;
  List.iter
    (fun (e : Baseline.entry) ->
      Buffer.add_string buf
        (Printf.sprintf
           "warning: stale baseline entry %s %s %s (no matching finding; \
            remove it)\n"
           e.rule e.fingerprint e.file))
    r.stale;
  let baselined = List.length r.findings - List.length r.fresh in
  Buffer.add_string buf
    (Printf.sprintf
       "rmt-lint: %d unit(s) scanned, %d finding(s) (%d baselined, %d new)\n"
       r.scanned
       (List.length r.findings)
       baselined
       (List.length r.fresh));
  Buffer.contents buf

let render_json r =
  let stale_json (e : Baseline.entry) =
    Printf.sprintf
      "{\"rule\":\"%s\",\"fingerprint\":\"%s\",\"file\":\"%s\"}" e.rule
      e.fingerprint e.file
  in
  Printf.sprintf
    "{\n\
     \  \"scanned\": %d,\n\
     \  \"findings\": %s,\n\
     \  \"fresh\": %s,\n\
     \  \"stale_baseline\": [%s]\n\
     }\n"
    r.scanned
    (Finding.list_to_json r.findings)
    (Finding.list_to_json r.fresh)
    (String.concat ", " (List.map stale_json r.stale))
