type scanned_unit = {
  su_source : string;
  su_has_mli : bool;
  su_intra : Finding.t list;
  su_summary : Callgraph.unit_summary;
  su_model : Model.unit_model;
  su_cached : bool;
}

type cache_stats = { lookups : int; hits : int }

let hit_rate s =
  if s.lookups = 0 then 0.0
  else 100.0 *. float_of_int s.hits /. float_of_int s.lookups

type report = {
  scanned : int;
  findings : Finding.t list;
  fresh : Finding.t list;
  stale : Baseline.entry list;
  cache : cache_stats;
}

let structural (u : Cmt_loader.unit_info) =
  Rules.check_structure ~file:u.Cmt_loader.source u.Cmt_loader.structure

let unit_of_info (u : Cmt_loader.unit_info) =
  {
    su_source = u.Cmt_loader.source;
    su_has_mli = u.Cmt_loader.has_mli;
    su_intra = structural u;
    su_summary =
      Callgraph.summarize ~source:u.Cmt_loader.source u.Cmt_loader.structure;
    su_model =
      Model.extract ~source:u.Cmt_loader.source u.Cmt_loader.structure;
    su_cached = false;
  }

(* Digest-first traversal: unchanged cmts are never parsed.  [dirs]
   bounds the analysis universe — the graph the summary store is built
   over is exactly the units whose recorded source lives under one of
   [dirs].  (Scoping the graph, not just the reporting, is load-bearing
   for R7: a test that exercises a deliberately-unguarded protocol next
   to a solvability assertion must not launder its sanitizer into the
   protocol's instantiation sets.)  The third component is the combined
   digest key of the in-scope units, under which the summary store
   itself is cached. *)
let scan_cached ~cache ~build_dir ~dirs =
  match Cmt_loader.cmt_paths ~build_dir with
  | Error e -> Error e
  | Ok paths ->
    let units = ref [] in
    let errors = ref [] in
    let lookups = ref 0 in
    let hits = ref 0 in
    let digests = Buffer.create 4096 in
    let keep ~path ~digest su =
      if Cmt_loader.under_one_of dirs su.su_source then begin
        Buffer.add_string digests path;
        Buffer.add_char digests ':';
        Buffer.add_string digests digest;
        Buffer.add_char digests '\n';
        units := su :: !units
      end
    in
    List.iter
      (fun path ->
        let digest = Digest.to_hex (Digest.file path) in
        incr lookups;
        match Cache.lookup cache ~cmt_path:path ~digest with
        | Some Cache.Skipped -> incr hits
        | Some (Cache.Analyzed a) ->
          incr hits;
          keep ~path ~digest
            {
              su_source = a.source;
              su_has_mli = a.has_mli;
              su_intra = a.intra;
              su_summary = a.summary;
              su_model = a.model;
              su_cached = true;
            }
        | None ->
          (match Cmt_loader.read_cmt path with
           | Error e -> errors := e :: !errors
           | Ok None -> Cache.store cache ~cmt_path:path ~digest Cache.Skipped
           | Ok (Some u) ->
             let su = unit_of_info u in
             Cache.store cache ~cmt_path:path ~digest
               (Cache.Analyzed
                  {
                    source = su.su_source;
                    has_mli = su.su_has_mli;
                    intra = su.su_intra;
                    summary = su.su_summary;
                    model = su.su_model;
                  });
             keep ~path ~digest su))
      paths;
    (match !errors with
     | e :: _ -> Error e
     | [] ->
       let units =
         List.sort
           (fun a b -> String.compare a.su_source b.su_source)
           !units
       in
       let key =
         Digest.to_hex (Digest.string (Buffer.contents digests))
       in
       Ok (units, { lookups = !lookups; hits = !hits }, key))

let graph_of units = Callgraph.build (List.map (fun u -> u.su_summary) units)

(* The whole-program protocol model: pure data over the cached per-unit
   fragments, so it reruns on the warm path without touching a
   typedtree. *)
let model_of units = Model.assemble (List.map (fun u -> u.su_model) units)

(* The summary store, cached whole under the combined cmt digest: a
   warm run with no source changes skips all three fixpoints and only
   recomputes the cheap protected-global index. *)
let store_of ~cache ~key graph =
  match Cache.lookup_summaries cache ~key with
  | Some effs -> (Summary.of_effects graph effs, true)
  | None ->
    let store = Summary.infer graph in
    Cache.store_summaries cache ~key (Summary.all store);
    (store, false)

(* Intraprocedural findings (cached per unit) + the filesystem half of
   R5 + the interprocedural passes (R4/R8 Lock, R6 Race, R7 Taint) as
   clients of the summary store + the protocol-model passes (R9/R10). *)
let findings_of ?(require_mli = true) units store =
  let intra =
    List.concat_map
      (fun su ->
        if require_mli && not su.su_has_mli then
          Finding.make ~rule:"R5" ~file:su.su_source
            "module has no .mli interface; determinism contracts must be \
             documented and representations kept private"
          :: su.su_intra
        else su.su_intra)
      units
  in
  let inter = Lock.analyze store @ Race.analyze store @ Taint.analyze store in
  let model = (model_of units).Model.findings in
  intra @ inter @ model |> List.sort Finding.compare

let analyze ?require_mli units =
  let units = List.map unit_of_info units in
  findings_of ?require_mli units (Summary.infer (graph_of units))

let no_cache_stats = { lookups = 0; hits = 0 }

let apply_baseline ?(cache = no_cache_stats) entries scanned findings =
  let fresh, stale = Baseline.partition entries findings in
  { scanned; findings; fresh; stale; cache }

let render_text r =
  let buf = Buffer.create 512 in
  List.iter
    (fun f -> Buffer.add_string buf (Finding.to_text f ^ "\n"))
    r.fresh;
  List.iter
    (fun (e : Baseline.entry) ->
      Buffer.add_string buf
        (Printf.sprintf
           "error: stale baseline entry %s %s %s — the pinned finding is \
            discharged; remove the line from the baseline\n"
           e.rule e.fingerprint e.file))
    r.stale;
  let baselined = List.length r.findings - List.length r.fresh in
  if r.cache.lookups > 0 then
    Buffer.add_string buf
      (Printf.sprintf "rmt-lint: cache %d/%d cmt(s) reused (%.1f%%)\n"
         r.cache.hits r.cache.lookups (hit_rate r.cache));
  Buffer.add_string buf
    (Printf.sprintf
       "rmt-lint: %d unit(s) scanned, %d finding(s) (%d baselined, %d new)\n"
       r.scanned
       (List.length r.findings)
       baselined
       (List.length r.fresh));
  Buffer.contents buf

let render_json r =
  let stale_json (e : Baseline.entry) =
    Printf.sprintf
      "{\"rule\":\"%s\",\"fingerprint\":\"%s\",\"file\":\"%s\"}" e.rule
      e.fingerprint e.file
  in
  Printf.sprintf
    "{\n\
     \  \"scanned\": %d,\n\
     \  \"cache\": {\"lookups\": %d, \"hits\": %d},\n\
     \  \"findings\": %s,\n\
     \  \"fresh\": %s,\n\
     \  \"stale_baseline\": [%s]\n\
     }\n"
    r.scanned r.cache.lookups r.cache.hits
    (Finding.list_to_json r.findings)
    (Finding.list_to_json r.fresh)
    (String.concat ", " (List.map stale_json r.stale))
