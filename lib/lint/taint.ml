(* R7 — Theorem-4 taint analysis.

   Theorem 4 (RMT-PKA correctness) rests on the receiver deciding only
   after two independent verifications of adversary-controlled data:

   - a {e cover / solvability} check — the union of claimed labels must
     fail to cover the sender-receiver cut (Cut.find_rmt_cut and
     friends), or equivalently the instance must be certified solvable;
   - a {e positive connectivity} check — the claimed graph must actually
     connect the sender to the receiver around any candidate corruption
     set (Connectivity.connected_avoiding and friends).

   A protocol that skips either family can be driven to a wrong decision
   by a crafted claimed structure.  Notably, [Paths.find_simple_path] is
   {e not} a connectivity sanitizer: asking for {e some} path in a
   claimed graph is vacuously satisfiable by the adversary supplying
   that path, which is exactly the vacuous-fullness bug fixed in PR 2 —
   only checks that quantify over corruption sets or verify
   reachability of the authentic receiver qualify.

   Sources are functions that bind Engine-delivered messages (an
   [~inbox] parameter) or adversary-payload types (Attack programs,
   Flood messages, Engine strategies).  Sinks are receiver decisions
   ([_.decided <- ...]) and Campaign verdict construction.  A finding is
   a source-to-sink call chain none of whose nodes reaches a sanitizer
   of some family; the chain is printed in full.

   Two refinements keep the pass honest:

   - "reaches a sanitizer" is the summary store's verdict, which
     includes one higher-order hop: the guards of a function flowing
     into a [~decider]-style parameter count for the function that
     receives it, so a protocol guarded through its instantiations is
     discharged by analysis rather than by baseline justification;
   - the connectivity family only obligates chains whose {e source}
     binds a trail-carrying payload ([Flood.msg]).  A connectivity
     check verifies a {e claimed topology}; a message that carries no
     topology claim (a bare value in an inbox) gives the check nothing
     to verify, so demanding it would be vacuous.  The cover family is
     obligated by every adversarial source: solvability of the
     instance is a precondition of deciding at all. *)

let rule = "R7"

type family = Cover | Connectivity

(* The name lists live in Summary (which folds them into every
   function's [s_cover]/[s_conn] bits during inference); this module
   owns the rationale and the reporting. *)
let cover_sanitizers = Summary.cover_sanitizers
let connectivity_sanitizers = Summary.connectivity_sanitizers

let sanitizers = function
  | Cover -> cover_sanitizers
  | Connectivity -> connectivity_sanitizers

let family_name = function
  | Cover -> "cover/solvability"
  | Connectivity -> "positive-connectivity"

let family_hint = function
  | Cover ->
    "Cut.find_rmt_cut / Solvability.is_solvable / Structure.mem"
  | Connectivity ->
    "Connectivity.connected_avoiding / Flood.trail_ok \
     (Paths.find_simple_path does not count: a mere claimed path is \
     adversary-satisfiable)"

let is_source (f : Callgraph.fn_summary) =
  f.inbox_param || f.adversary_types <> []

(* Payload types that carry a topology claim (a relay trail); only
   sources binding one of these obligate the connectivity family. *)
let trail_source_types = [ "Flood.msg" ]

let source_for fam (f : Callgraph.fn_summary) =
  match fam with
  | Cover -> is_source f
  | Connectivity ->
    List.exists
      (Names.qualified_matches trail_source_types)
      f.adversary_types

(* [sanitized store fam] is the membership test for "references a [fam]
   sanitizer — directly, in some transitive callee, or in a function
   flowing into one of its higher-order parameters".  The last clause is
   the summary store's instantiation analysis: a [~decider] argument's
   guards count for the function that receives it. *)
let sanitized store fam =
  match fam with
  | Cover -> Summary.cover_sanitized store
  | Connectivity -> Summary.conn_sanitized store

(* Shortest source-to-[sink_fn] call chain every node of which fails
   [admit] ... i.e. backward BFS over callers through admitted nodes. *)
let source_chain graph ~fam ~admit start =
  let accept name =
    match Callgraph.find graph name with
    | Some f -> source_for fam f
    | None -> false
  in
  if not (admit start) then None
  else if accept start then Some [ start ]
  else begin
    let parent = Hashtbl.create 32 in
    Hashtbl.replace parent start start;
    let q = Queue.create () in
    Queue.add start q;
    let result = ref None in
    while !result = None && not (Queue.is_empty q) do
      let n = Queue.pop q in
      List.iter
        (fun c ->
          if !result = None && admit c && not (Hashtbl.mem parent c) then begin
            Hashtbl.replace parent c n;
            if accept c then result := Some c else Queue.add c q
          end)
        (Callgraph.callers graph n)
    done;
    match !result with
    | None -> None
    | Some s ->
      (* parent pointers lead from the source back down to [start], so
         walking them yields the chain already in call order. *)
      let rec walk n acc =
        let acc = n :: acc in
        if String.equal n start then List.rev acc
        else walk (Hashtbl.find parent n) acc
      in
      Some (walk s [])
  end

let hop_of graph name =
  match Callgraph.find graph name with
  | Some f ->
    { Finding.hop_fn = name; hop_file = f.fn_file; hop_line = f.fn_line }
  | None -> { Finding.hop_fn = name; hop_file = "?"; hop_line = 0 }

let sink_word (f : Callgraph.fn_summary) =
  f.sinks
  |> List.map (fun (s : Callgraph.sink_site) ->
         Callgraph.sink_describe s.sink_kind)
  |> List.sort_uniq String.compare
  |> String.concat ", "

let analyze store =
  let graph = Summary.graph store in
  let sanitized_of = [ (Cover, sanitized store Cover);
                       (Connectivity, sanitized store Connectivity) ] in
  let findings = ref [] in
  List.iter
    (fun (f : Callgraph.fn_summary) ->
      if f.sinks <> [] then begin
        (* One witness chain per unguarded family, then one finding per
           distinct chain listing every family it witnesses. *)
        let witnesses =
          List.filter_map
            (fun (fam, is_sanitized) ->
              if is_sanitized f.fn_name then None
              else
                match
                  source_chain graph ~fam
                    ~admit:(fun n -> not (is_sanitized n))
                    f.fn_name
                with
                | None -> None
                | Some chain -> Some (fam, chain))
            sanitized_of
        in
        let chains =
          List.map snd witnesses
          |> List.sort_uniq (List.compare String.compare)
        in
        List.iter
          (fun chain ->
            let fams =
              List.filter_map
                (fun (fam, c) ->
                  if List.compare String.compare c chain = 0 then Some fam
                  else None)
                witnesses
            in
            let missing =
              String.concat " and "
                (List.map
                   (fun fam ->
                     Printf.sprintf "%s check (%s)" (family_name fam)
                       (family_hint fam))
                   fams)
            in
            let anchor = List.hd f.sinks in
            let context =
              match List.rev (String.split_on_char '.' f.fn_name) with
              | last :: _ -> last
              | [] -> f.fn_name
            in
            findings :=
              Finding.make ~rule ~file:f.fn_file ~line:anchor.sink_line
                ~col:anchor.sink_col ~context
                ~chain:(List.map (hop_of graph) chain)
                (Printf.sprintf
                   "adversary-controlled data reaches decision sink \
                    (%s) with no %s anywhere on the call chain; \
                    Theorem 4 requires it before the receiver commits"
                   (sink_word f) missing)
              :: !findings)
          chains
      end)
    (Callgraph.functions graph);
  List.sort Finding.compare !findings

let audit store =
  let graph = Summary.graph store in
  let buf = Buffer.create 1024 in
  let sanitized_of = [ (Cover, sanitized store Cover);
                       (Connectivity, sanitized store Connectivity) ] in
  let sources =
    Callgraph.functions graph |> List.filter is_source
    |> List.map (fun (f : Callgraph.fn_summary) -> f.fn_name)
  in
  Buffer.add_string buf "Theorem-4 taint audit\n";
  Buffer.add_string buf
    (Printf.sprintf "  sources (%d): %s\n" (List.length sources)
       (String.concat ", " sources));
  let sinks =
    Callgraph.functions graph
    |> List.filter (fun (f : Callgraph.fn_summary) -> f.sinks <> [])
  in
  Buffer.add_string buf
    (Printf.sprintf "  decision sinks (%d):\n" (List.length sinks));
  List.iter
    (fun (f : Callgraph.fn_summary) ->
      Buffer.add_string buf
        (Printf.sprintf "    %s (%s:%d) — %s\n" f.fn_name f.fn_file
           f.fn_line (sink_word f));
      List.iter
        (fun (fam, is_sanitized) ->
          if is_sanitized f.fn_name then
            Buffer.add_string buf
              (Printf.sprintf "      %-21s guarded\n"
                 (family_name fam ^ ":"))
          else
            match
              source_chain graph ~fam
                ~admit:(fun n -> not (is_sanitized n))
                f.fn_name
            with
            | Some chain ->
              Buffer.add_string buf
                (Printf.sprintf "      %-21s UNGUARDED  %s\n"
                   (family_name fam ^ ":")
                   (String.concat " -> " chain))
            | None ->
              Buffer.add_string buf
                (Printf.sprintf
                   "      %-21s unguarded, but no %sadversarial source \
                    reaches it\n"
                   (family_name fam ^ ":")
                   (match fam with
                    | Cover -> ""
                    | Connectivity -> "trail-carrying ")))
        sanitized_of)
    sinks;
  Buffer.contents buf
