(* Protocol-model extraction and the R9/R10 rule families.

   Extraction walks a unit's typedtree once and records plain,
   marshalable facts per function (see model.mli); assembly is pure
   data over those fragments, so the warm cache path never re-reads a
   typedtree.  The walk is deliberately syntactic where the repository
   is idiomatic — send records are [Engine.{ dst; payload }] literals,
   neighbor fan-out is a fold over [Graph.neighbors], relays iterate
   the [inbox] parameter — and falls back to "unbounded" whenever a
   send-typed value flows through something it cannot classify. *)

open Typedtree

type ctx = Top | Inbox | Deg | Inbox_deg | Nodes | Unknown

type call_site = {
  cs_ctx : ctx;
  cs_callee : string;
  cs_passes_inbox : bool;
  cs_returns_sends : bool;
}

type fn_facts = {
  f_name : string;
  f_file : string;
  f_line : int;
  f_params : string list;
  f_sends : (ctx * int) list;
  f_calls : call_site list;
  f_constructs : (string * string) list;
  f_matches : (string * string) list;
  f_writes : (string * bool) list;
  f_reads : string list;
  f_inbox_head_only : bool;
  f_uses_round : bool;
  f_dedup_guard : bool;
  f_scope : (string * fn_facts) list;
}

type automaton_src = {
  a_owner : string;
  a_file : string;
  a_line : int;
  a_msg_type : string;
  a_init : string;
  a_step : string;
  a_decision : string;
}

type unit_model = {
  um_source : string;
  um_module : string;
  um_fns : fn_facts list;
  um_automata : automaton_src list;
}

(* ------------------------------------------------------------------ *)
(* Extraction                                                          *)
(* ------------------------------------------------------------------ *)

let line_of (loc : Location.t) = loc.loc_start.Lexing.pos_lnum
let inbox_name = "inbox"

let callee_name p =
  match p with
  | Path.Pident _ -> Names.path_name p
  | _ -> Names.canonical_ref (Names.path_name p)

let last_component s =
  match String.rindex_opt s '.' with
  | None -> s
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)

let type_mentions_send ty =
  List.exists
    (fun n -> String.equal (last_component n) "send")
    (Names.type_constr_names ty)

let head_of_type ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Some (Names.canonical_ref (Names.path_name p))
  | _ -> None

let is_mutable_label (ld : Types.label_description) =
  match ld.lbl_mut with
  | Asttypes.Mutable -> true
  | Asttypes.Immutable -> false

let skipped_ctors = [ "::"; "[]"; "Some"; "None"; "()"; "true"; "false" ]
let skipped_heads = [ "list"; "option"; "bool"; "unit"; "exn" ]

let ctor_entry (cd : Types.constructor_description) =
  if List.mem cd.cstr_name skipped_ctors then None
  else
    match head_of_type cd.cstr_res with
    | Some h
      when (not (List.mem h skipped_heads))
           (* Printf/Format literals elaborate to CamlinternalFormat
              GADT constructors; they are not protocol messages *)
           && not (String.starts_with ~prefix:"CamlinternalFormat" h) ->
      Some (h, cd.cstr_name)
    | _ -> None

(* Iterator recognition: (names, fn-arg index, sequence-arg index among
   positional args, forced context for the sequence if any). *)
type seq_kind = Seq_classify | Seq_unknown

let iterator_specs =
  [
    ( [
        "List.iter"; "List.map"; "List.mapi"; "List.filter_map";
        "List.concat_map"; "List.find_map"; "List.for_all"; "List.exists";
        "List.filter"; "Array.iter"; "Array.map";
      ],
      0, 1, Seq_classify );
    ([ "List.fold_left" ], 0, 2, Seq_classify);
    ([ "Nodeset.fold" ], 0, 1, Seq_classify);
    ([ "Nodeset.iter" ], 0, 1, Seq_classify);
    ([ "Hashtbl.iter"; "Hashtbl.fold"; "Seq.iter"; "Seq.map" ], 0, 1,
      Seq_unknown );
  ]

let iterator_spec name =
  List.find_map
    (fun (names, fi, si, k) ->
      if Names.qualified_matches names name then Some (fi, si, k) else None)
    iterator_specs

(* Evaluated exactly once, produce no sends of their own: walk through. *)
let transparent_names =
  [ "@"; "|>"; "@@"; "List.rev"; "List.append"; "List.rev_append";
    "List.concat"; "Option.value"; "Option.map"; "Option.iter";
    "Option.bind"; "ignore"; "fst"; "snd" ]

let dedup_guard_names = [ "Hashtbl.mem"; "List.mem"; "List.mem_assoc" ]

(* Iterating over [Envelope.slots env] replicates each send by the
   envelope's redundancy factor (drop_budget + 1).  The budget is
   clamped to [Envelope.max_drop_budget] at construction, so a pinned
   constant multiplier is sound — the same deliberate coarseness as
   capping a [Nodes] sequence at n.  Only send {e literals} under the
   iteration get the factor: a send-returning {e call} under it would
   lose it, so such calls are demoted to Unknown (unbounded) instead. *)
let slots_cap = 4

let combine outer inner =
  match (outer, inner) with
  | Top, c | c, Top -> c
  | Inbox, Deg | Deg, Inbox -> Inbox_deg
  | _ -> Unknown

let is_function e =
  match e.exp_desc with Texp_function _ -> true | _ -> false

let peel_some e =
  match e.exp_desc with
  | Texp_construct (_, cd, [ inner ])
    when String.equal cd.Types.cstr_name "Some" ->
    inner
  | _ -> e

let is_ident_named n e =
  match (peel_some e).exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> String.equal (Ident.name id) n
  | _ -> false

let is_none_literal e =
  match e.exp_desc with
  | Texp_construct (_, cd, []) -> String.equal cd.Types.cstr_name "None"
  | _ -> false

let rec head_only_case : type k. k general_pattern -> bool =
 fun p ->
  match p.pat_desc with
  | Tpat_value v -> head_only_case (v :> value general_pattern)
  | Tpat_construct (_, cd, [ _; tail ], _)
    when String.equal cd.Types.cstr_name "::" -> (
    match tail.pat_desc with Tpat_any -> true | _ -> false)
  | Tpat_or (a, b, _) -> head_only_case a || head_only_case b
  | Tpat_alias (q, _, _) -> head_only_case q
  | _ -> false

let rec cons_case : type k. k general_pattern -> bool =
 fun p ->
  match p.pat_desc with
  | Tpat_value v -> cons_case (v :> value general_pattern)
  | Tpat_construct (_, cd, _, _) -> String.equal cd.Types.cstr_name "::"
  | Tpat_or (a, b, _) -> cons_case a || cons_case b
  | Tpat_alias (q, _, _) -> cons_case q
  | _ -> false

let bare_name_of_pat p =
  match pat_bound_idents p with id :: _ -> Some (Ident.name id) | [] -> None

(* Does an expression mention the inbox, read mutable state, or touch a
   hash table?  Local lists that do none of those are topology-derived
   (Dolev's node-disjoint routes): iterating them is capped at n. *)
let topology_derived e =
  let dirty = ref false in
  let default = Tast_iterator.default_iterator in
  let expr sub e =
    (match e.exp_desc with
     | Texp_ident (Path.Pident id, _, _)
       when String.equal (Ident.name id) inbox_name ->
       dirty := true
     | Texp_ident (p, _, _)
       when Names.qualified_matches [ "Hashtbl.fold"; "Hashtbl.find";
                                      "Hashtbl.find_opt" ]
              (callee_name p) ->
       dirty := true
     | Texp_field (_, _, ld) when is_mutable_label ld -> dirty := true
     | _ -> ());
    default.expr sub e
  in
  let iter = { default with expr } in
  iter.expr iter e;
  not !dirty

(* The automaton literal: a record with exactly these three fields. *)
let automaton_labels fields =
  let names =
    Array.to_list fields
    |> List.map (fun ((ld : Types.label_description), _) -> ld.lbl_name)
    |> List.sort String.compare
  in
  List.equal String.equal names [ "decision"; "init"; "step" ]

let msg_type_of_record ty =
  match Types.get_desc ty with
  | Types.Tconstr (_, [ _state; msg ], _) -> Names.show_type msg
  | _ -> "?"

type collector = {
  c_file : string;
  c_scope : (string * fn_facts) list ref;  (** per top-level binding *)
  c_topo : (string, unit) Hashtbl.t;
  c_automata : automaton_src list ref;
  c_owner : string;
}

(* Extract the facts of one function (or plain) expression.  Nested
   function lets are extracted recursively into the shared scope and
   not walked inline, so their sends are attributed to them and reach
   callers only through call sites. *)
let rec collect_fn col ~name ~line expr =
  let params = ref [] in
  let add_param n =
    if (not (String.contains n '*')) && not (List.mem n !params) then
      params := n :: !params
  in
  let body =
    let rec peel e =
      match e.exp_desc with
      | Texp_function { arg_label; cases; _ } -> (
        (match arg_label with
         | Asttypes.Labelled n | Asttypes.Optional n -> add_param n
         | Asttypes.Nolabel -> ());
        match cases with
        | [ c ] ->
          List.iter
            (fun id -> add_param (Ident.name id))
            (pat_bound_idents c.c_lhs);
          peel c.c_rhs
        | _ -> e)
      | _ -> e
    in
    peel expr
  in
  let sends = Hashtbl.create 4 in
  let calls = ref [] in
  let constructs = ref [] in
  let matches = ref [] in
  let writes = ref [] in
  let reads = ref [] in
  let head_match = ref false in
  let full_use = ref false in
  let uses_round = ref false in
  let dedup = ref false in
  let ctx = ref Top in
  let with_ctx c f =
    let old = !ctx in
    ctx := c;
    f ();
    ctx := old
  in
  let mult = ref 1 in
  let with_mult m f =
    let old = !mult in
    mult := !mult * m;
    f ();
    mult := old
  in
  let add_send () =
    let cur = Option.value (Hashtbl.find_opt sends !ctx) ~default:0 in
    Hashtbl.replace sends !ctx (cur + !mult)
  in
  let add_once r v = if not (List.mem v !r) then r := v :: !r in
  let default = Tast_iterator.default_iterator in
  let rec expr_iter sub e =
    match e.exp_desc with
    | Texp_let (_, vbs, cont) ->
      List.iter
        (fun vb ->
          match bare_name_of_pat vb.vb_pat with
          | Some n when is_function vb.vb_expr ->
            let nested =
              collect_fn col
                ~name:(col.c_owner ^ "." ^ n)
                ~line:(line_of vb.vb_loc) vb.vb_expr
            in
            col.c_scope := (n, nested) :: !(col.c_scope)
          | nm ->
            (match nm with
             | Some n when topology_derived vb.vb_expr ->
               Hashtbl.replace col.c_topo n ()
             | _ -> ());
            sub.Tast_iterator.expr sub vb.vb_expr)
        vbs;
      sub.Tast_iterator.expr sub cont
    | Texp_record { fields; extended_expression; _ }
      when automaton_labels fields ->
      let component lbl =
        let value =
          Array.to_list fields
          |> List.find_map (fun ((ld : Types.label_description), def) ->
                 if String.equal ld.lbl_name lbl then
                   match def with Overridden (_, e) -> Some e | Kept _ -> None
                 else None)
        in
        match value with
        | Some v when is_function v ->
          let n = Printf.sprintf "<%s:%d>" lbl (line_of v.exp_loc) in
          let nested =
            collect_fn col
              ~name:(col.c_owner ^ "." ^ n)
              ~line:(line_of v.exp_loc) v
          in
          col.c_scope := (n, nested) :: !(col.c_scope);
          n
        | Some { exp_desc = Texp_ident (p, _, _); _ } -> callee_name p
        | _ -> "<unresolved>"
      in
      col.c_automata :=
        {
          a_owner = col.c_owner;
          a_file = col.c_file;
          a_line = line_of e.exp_loc;
          a_msg_type = msg_type_of_record e.exp_type;
          a_init = component "init";
          a_step = component "step";
          a_decision = component "decision";
        }
        :: !(col.c_automata);
      Option.iter (sub.Tast_iterator.expr sub) extended_expression
    | Texp_record { fields; _ }
      when Array.length fields = 2
           && Array.for_all
                (fun ((ld : Types.label_description), _) ->
                  List.mem ld.lbl_name [ "dst"; "payload" ])
                fields ->
      add_send ();
      default.expr sub e
    | Texp_construct (_, cd, _) ->
      Option.iter (add_once constructs) (ctor_entry cd);
      default.expr sub e
    | Texp_setfield (r, _, ld, rhs) ->
      writes := (ld.Types.lbl_name, is_none_literal rhs) :: !writes;
      sub.Tast_iterator.expr sub r;
      sub.Tast_iterator.expr sub rhs
    | Texp_field (r, _, ld) ->
      if is_mutable_label ld then add_once reads ld.Types.lbl_name;
      sub.Tast_iterator.expr sub r
    | Texp_ident (Path.Pident id, _, _) ->
      let n = Ident.name id in
      if String.equal n inbox_name then full_use := true;
      if String.equal n "round" then uses_round := true
    | Texp_match (scrut, cases, _) when is_ident_named inbox_name scrut ->
      List.iter
        (fun c ->
          if head_only_case c.c_lhs then head_match := true
          else if cons_case c.c_lhs then full_use := true)
        cases;
      List.iter (fun c -> sub.Tast_iterator.case sub c) cases
    | Texp_while (cond, body) ->
      sub.Tast_iterator.expr sub cond;
      with_ctx Unknown (fun () -> sub.Tast_iterator.expr sub body)
    | Texp_for (_, _, lo, hi, _, body) ->
      sub.Tast_iterator.expr sub lo;
      sub.Tast_iterator.expr sub hi;
      with_ctx Unknown (fun () -> sub.Tast_iterator.expr sub body)
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
      apply_iter sub e (callee_name p) args
    | Texp_apply (fn, args) ->
      (* unknown callee expression producing sends: unclassifiable *)
      if type_mentions_send e.exp_type then
        with_ctx Unknown (fun () -> add_send ());
      sub.Tast_iterator.expr sub fn;
      walk_args sub args
    | _ -> default.expr sub e
  and walk_args sub args =
    List.iter
      (fun (_, arg) ->
        match arg with
        | None -> ()
        | Some a ->
          if is_function (peel_some a) then
            (* behavior escaping into an unknown callee: multiplicity
               unknown *)
            with_ctx Unknown (fun () -> sub.Tast_iterator.expr sub a)
          else sub.Tast_iterator.expr sub a)
      args
  and apply_iter sub e name args =
    if Names.qualified_matches dedup_guard_names name then dedup := true;
    if Names.qualified_matches transparent_names name then
      List.iter
        (fun (_, arg) -> Option.iter (sub.Tast_iterator.expr sub) arg)
        args
    else
      match iterator_spec name with
      | Some (fn_idx, seq_idx, kind) -> (
        let positional =
          List.filter_map
            (fun (lbl, arg) ->
              match (lbl, arg) with
              | Asttypes.Nolabel, Some a -> Some a
              | _ -> None)
            args
        in
        match (List.nth_opt positional fn_idx, List.nth_opt positional seq_idx)
        with
        | Some farg, Some seq ->
          let slots_iter =
            match kind with
            | Seq_unknown -> false
            | Seq_classify -> (
              match (peel_some seq).exp_desc with
              | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) ->
                Names.qualified_matches [ "Envelope.slots" ] (callee_name p)
              | _ -> false)
          in
          let seq_ctx =
            match kind with
            | Seq_unknown -> Unknown
            | _ when slots_iter ->
              (* constant-length redundancy slots: same context, each
                 send literal under the body counts [slots_cap] times *)
              Top
            | Seq_classify -> (
              let seq = peel_some seq in
              if is_ident_named inbox_name seq then (
                full_use := true;
                Inbox)
              else
                match seq.exp_desc with
                | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _)
                  when Names.qualified_matches [ "Graph.neighbors" ]
                         (callee_name p) ->
                  Deg
                | Texp_ident (Path.Pident id, _, _)
                  when Hashtbl.mem col.c_topo (Ident.name id) ->
                  Nodes
                | _ ->
                  if
                    List.exists
                      (fun n -> String.equal (last_component n) "t"
                                && String.equal n "Nodeset.t")
                      (Names.type_constr_names seq.exp_type)
                  then Nodes
                  else Unknown)
          in
          List.iter
            (fun a -> if a != farg then sub.Tast_iterator.expr sub a)
            positional;
          List.iter
            (fun (lbl, arg) ->
              match lbl with
              | Asttypes.Nolabel -> ()
              | _ -> Option.iter (sub.Tast_iterator.expr sub) arg)
            args;
          with_ctx (combine !ctx seq_ctx) (fun () ->
              if slots_iter then
                with_mult slots_cap (fun () -> sub.Tast_iterator.expr sub farg)
              else sub.Tast_iterator.expr sub farg)
        | _ ->
          (* partial application of an iterator: treat as opaque *)
          if type_mentions_send e.exp_type then
            with_ctx Unknown (fun () -> add_send ());
          walk_args sub args)
      | None ->
        let passes_inbox =
          List.exists
            (fun (lbl, arg) ->
              (match lbl with
               | Asttypes.Labelled n | Asttypes.Optional n ->
                 String.equal n inbox_name
               | Asttypes.Nolabel -> false)
              ||
              match arg with
              | Some a -> is_ident_named inbox_name a
              | None -> false)
            args
        in
        let returns_sends = type_mentions_send e.exp_type in
        calls :=
          {
            cs_ctx =
              (* a send-returning call under a slots multiplier would
                 lose the redundancy factor: refuse to bound it *)
              (if returns_sends && !mult > 1 then Unknown else !ctx);
            cs_callee = name;
            cs_passes_inbox = passes_inbox;
            cs_returns_sends = returns_sends;
          }
          :: !calls;
        walk_args sub args
  in
  let pat : type k. Tast_iterator.iterator -> k general_pattern -> unit =
   fun sub p ->
    (match p.pat_desc with
     | Tpat_construct (_, cd, _, _) ->
       Option.iter (add_once matches) (ctor_entry cd)
     | _ -> ());
    default.pat sub p
  in
  let iter = { default with expr = expr_iter; pat } in
  iter.expr iter body;
  {
    f_name = name;
    f_file = col.c_file;
    f_line = line;
    f_params = List.rev !params;
    f_sends =
      (let rank c =
         match c with
         | Top -> 0
         | Inbox -> 1
         | Deg -> 2
         | Inbox_deg -> 3
         | Nodes -> 4
         | Unknown -> 5
       in
       Hashtbl.fold (fun c n acc -> (c, n) :: acc) sends []
       |> List.sort (fun (c1, n1) (c2, n2) ->
              match Int.compare (rank c1) (rank c2) with
              | 0 -> Int.compare n1 n2
              | d -> d));
    f_calls = List.rev !calls;
    f_constructs = List.sort compare !constructs;
    f_matches = List.sort compare !matches;
    f_writes = List.rev !writes;
    f_reads = List.sort String.compare !reads;
    f_inbox_head_only = !head_match && not !full_use;
    f_uses_round = !uses_round;
    f_dedup_guard = !dedup;
    f_scope = [];
  }

let extract ~source str =
  let module_name = Names.module_of_source source in
  let fns = ref [] in
  let automata = ref [] in
  let rec items prefix str_items =
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match bare_name_of_pat vb.vb_pat with
              | None -> ()
              | Some bare ->
                let qualified = prefix ^ "." ^ bare in
                let col =
                  {
                    c_file = source;
                    c_scope = ref [];
                    c_topo = Hashtbl.create 4;
                    c_automata = automata;
                    c_owner = qualified;
                  }
                in
                let facts =
                  collect_fn col ~name:qualified ~line:(line_of vb.vb_loc)
                    vb.vb_expr
                in
                fns := { facts with f_scope = List.rev !(col.c_scope) } :: !fns)
            vbs
        | Tstr_module mb -> (
          match (mb.mb_id, mb.mb_expr.mod_desc) with
          | Some id, Tmod_structure s ->
            items (prefix ^ "." ^ Ident.name id) s.str_items
          | _ -> ())
        | Tstr_recmodule mbs ->
          List.iter
            (fun mb ->
              match (mb.mb_id, mb.mb_expr.mod_desc) with
              | Some id, Tmod_structure s ->
                items (prefix ^ "." ^ Ident.name id) s.str_items
              | _ -> ())
            mbs
        | _ -> ())
      str_items
  in
  items module_name str.str_items;
  {
    um_source = source;
    um_module = module_name;
    um_fns = List.rev !fns;
    um_automata = List.rev !automata;
  }

(* ------------------------------------------------------------------ *)
(* Bounds                                                              *)
(* ------------------------------------------------------------------ *)

type bound = {
  b_const : int;
  b_deg : int;
  b_nodes : int;
  b_inbox : int;
  b_inbox_deg : int;
  b_unbounded : bool;
}

let zero_bound =
  {
    b_const = 0;
    b_deg = 0;
    b_nodes = 0;
    b_inbox = 0;
    b_inbox_deg = 0;
    b_unbounded = false;
  }

let unbounded = { zero_bound with b_unbounded = true }

let is_zero b =
  b.b_const = 0 && b.b_deg = 0 && b.b_nodes = 0 && b.b_inbox = 0
  && b.b_inbox_deg = 0
  && not b.b_unbounded

let add_bound a b =
  {
    b_const = a.b_const + b.b_const;
    b_deg = a.b_deg + b.b_deg;
    b_nodes = a.b_nodes + b.b_nodes;
    b_inbox = a.b_inbox + b.b_inbox;
    b_inbox_deg = a.b_inbox_deg + b.b_inbox_deg;
    b_unbounded = a.b_unbounded || b.b_unbounded;
  }

let scale k b =
  {
    b_const = k * b.b_const;
    b_deg = k * b.b_deg;
    b_nodes = k * b.b_nodes;
    b_inbox = k * b.b_inbox;
    b_inbox_deg = k * b.b_inbox_deg;
    b_unbounded = b.b_unbounded;
  }

(* Context multiplication: only a bound already reduced to the matching
   shape survives; everything else degrades to unbounded. *)
let ctx_mult c b =
  if is_zero b then zero_bound
  else
    let only_const =
      b.b_deg = 0 && b.b_nodes = 0 && b.b_inbox = 0 && b.b_inbox_deg = 0
      && not b.b_unbounded
    in
    match c with
    | Top -> b
    | Inbox ->
      if only_const then { zero_bound with b_inbox = b.b_const }
      else if
        b.b_nodes = 0 && b.b_inbox = 0 && b.b_inbox_deg = 0
        && not b.b_unbounded
      then { zero_bound with b_inbox = b.b_const; b_inbox_deg = b.b_deg }
      else unbounded
    | Deg ->
      if only_const then { zero_bound with b_deg = b.b_const } else unbounded
    | Nodes ->
      if only_const then { zero_bound with b_nodes = b.b_const }
      else unbounded
    | Inbox_deg ->
      if only_const then { zero_bound with b_inbox_deg = b.b_const }
      else unbounded
    | Unknown -> unbounded

let bound_to_string b =
  if b.b_unbounded then "unbounded"
  else
    let terms =
      List.filter_map
        (fun (k, t) ->
          if k = 0 then None
          else if k = 1 then Some t
          else Some (Printf.sprintf "%d·%s" k t))
        [
          (b.b_const, "1"); (b.b_deg, "deg(v)"); (b.b_nodes, "n");
          (b.b_inbox, "|inbox|"); (b.b_inbox_deg, "|inbox|·deg(v)");
        ]
    in
    match terms with
    | [] -> "0"
    | _ ->
      String.concat " + "
        (List.map (fun t -> if t = "1" then string_of_int b.b_const else t)
           terms)

let sat_mul a b =
  if a = 0 || b = 0 then 0
  else if a > max_int / 2 / b then max_int / 2
  else a * b

let sat_add a b = if a > max_int / 2 - b then max_int / 2 else a + b

let concretize b ~num_nodes ~sum_deg ~max_deg ~prev =
  if b.b_unbounded then max_int
  else
    sat_add
      (sat_mul b.b_const num_nodes)
      (sat_add
         (sat_mul b.b_deg sum_deg)
         (sat_add
            (sat_mul b.b_nodes (sat_mul num_nodes num_nodes))
            (sat_add
               (sat_mul b.b_inbox prev)
               (sat_mul b.b_inbox_deg (sat_mul prev max_deg)))))

(* ------------------------------------------------------------------ *)
(* Assembly                                                            *)
(* ------------------------------------------------------------------ *)

type protocol = {
  p_name : string;
  p_file : string;
  p_line : int;
  p_msg_type : string;
  p_alphabet : string list;
  p_handled : string list;
  p_decision_reads : string list;
  p_round_sensitive : bool;
  p_dedup_guarded : bool;
  p_init : bound;
  p_step : bound;
}

type helper = {
  h_name : string;
  h_file : string;
  h_line : int;
  h_bound : bound;
}

type t = {
  protocols : protocol list;
  helpers : helper list;
  findings : Finding.t list;
}

(* A resolution environment: the owner binding's flat local scope, the
   defining unit's module-level bindings, then the whole program. *)
type env = {
  e_scope : (string * fn_facts) list;
  e_module : string;
  e_units : (string, fn_facts) Hashtbl.t;  (** canonical [Module.fn] *)
}

let resolve env name =
  match List.assoc_opt name env.e_scope with
  | Some f -> Some (f, env)
  | None ->
    let lookup key =
      match Hashtbl.find_opt env.e_units key with
      | Some f ->
        let owner_module =
          match String.index_opt f.f_name '.' with
          | Some i -> String.sub f.f_name 0 i
          | None -> env.e_module
        in
        Some (f, { env with e_scope = f.f_scope; e_module = owner_module })
      | None -> None
    in
    if String.contains name '.' then lookup (Names.canonical_ref name)
    else lookup (Names.canonical_ref (env.e_module ^ "." ^ name))

(* The send bound of one function, composing callee bounds by context
   multiplication.  The second component is the set of in-progress
   functions a back edge targeted: a function that closes a cycle while
   accumulating sends degrades to unbounded, but a send-free recursive
   helper (tail_of, hop_after) stays zero and never poisons its
   callers. *)
let rec bound_of ~visiting env (f : fn_facts) =
  if List.mem f.f_name visiting then (zero_bound, [ f.f_name ])
  else if List.length visiting > 60 then (unbounded, [])
  else
    let visiting = f.f_name :: visiting in
    let own =
      List.fold_left
        (fun acc (c, n) ->
          add_bound acc (ctx_mult c (scale n { zero_bound with b_const = 1 })))
        zero_bound f.f_sends
    in
    let b, targets =
      List.fold_left
        (fun (acc, tgts) cs ->
          match resolve env cs.cs_callee with
          | None ->
            if cs.cs_returns_sends then (add_bound acc unbounded, tgts)
            else (acc, tgts)
          | Some (callee, cenv) ->
            let cb, ct = bound_of ~visiting cenv callee in
            let cb =
              if cs.cs_passes_inbox || (cb.b_inbox = 0 && cb.b_inbox_deg = 0)
              then cb
              else
                (* inbox-shaped bound applied to some other list *)
                add_bound
                  { cb with b_inbox = 0; b_inbox_deg = 0 }
                  unbounded
            in
            (add_bound acc (ctx_mult cs.cs_ctx cb), ct @ tgts))
        (own, []) f.f_calls
    in
    let closes = List.mem f.f_name targets in
    let targets =
      List.filter (fun t -> not (String.equal t f.f_name)) targets
    in
    if closes && not (is_zero b) then (unbounded, targets) else (b, targets)

(* Functions reachable from a set of roots through resolvable calls. *)
let reachable env roots =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let rec go env (f : fn_facts) =
    if not (Hashtbl.mem seen f.f_name) then begin
      Hashtbl.replace seen f.f_name ();
      acc := f :: !acc;
      List.iter
        (fun cs ->
          match resolve env cs.cs_callee with
          | Some (callee, cenv) -> go cenv callee
          | None -> ())
        f.f_calls
    end
  in
  List.iter
    (fun name ->
      match resolve env name with
      | Some (callee, cenv) -> go cenv callee
      | None -> ())
    roots;
  List.rev !acc

let dedup_sorted l = List.sort_uniq String.compare l

let assemble units =
  let units =
    List.sort (fun a b -> String.compare a.um_source b.um_source) units
  in
  (* first-unit-wins canonical table, like Callgraph.build *)
  let table = Hashtbl.create 256 in
  List.iter
    (fun um ->
      List.iter
        (fun (f : fn_facts) ->
          let key = Names.canonical_ref f.f_name in
          if not (Hashtbl.mem table key) then Hashtbl.replace table key f)
        um.um_fns)
    units;
  let findings = ref [] in
  let add_finding f =
    if
      not
        (List.exists
           (fun g -> String.equal (Finding.fingerprint g) (Finding.fingerprint f))
           !findings)
    then findings := f :: !findings
  in
  let protocols = ref [] in
  List.iter
    (fun um ->
      let env0 =
        { e_scope = []; e_module = um.um_module; e_units = table }
      in
      List.iter
        (fun (a : automaton_src) ->
          let owner_scope =
            match resolve env0 (last_component a.a_owner) with
            | Some (f, _) -> f.f_scope
            | None -> []
          in
          let env = { env0 with e_scope = owner_scope } in
          let comp name =
            match resolve env name with Some (f, e) -> Some (f, e) | None -> None
          in
          let bound_of_comp name =
            match comp name with
            | Some (f, e) -> fst (bound_of ~visiting:[] e f)
            | None -> unbounded
          in
          let init_b = bound_of_comp a.a_init in
          let step_b = bound_of_comp a.a_step in
          let span = reachable env [ a.a_init; a.a_step ] in
          let state_heads =
            match comp a.a_decision with
            | Some (d, _) -> dedup_sorted (List.map fst d.f_matches)
            | None -> []
          in
          let message_ctors sel =
            List.concat_map
              (fun (f : fn_facts) ->
                List.filter_map
                  (fun (h, c) ->
                    if List.mem h state_heads then None else Some c)
                  (sel f))
              span
            |> dedup_sorted
          in
          let alphabet = message_ctors (fun f -> f.f_constructs) in
          let handled = message_ctors (fun f -> f.f_matches) in
          let decision_reads =
            match comp a.a_decision with
            | Some (d, _) -> d.f_reads
            | None -> []
          in
          let bare = last_component a.a_owner in
          (* R9a: decision write-once.  Any step-reachable assignment to
             a field the decision reads must be guarded by a read of
             that field in the same function, and must never be a
             literal None. *)
          List.iter
            (fun (f : fn_facts) ->
              List.iter
                (fun (lbl, none_rhs) ->
                  if List.mem lbl decision_reads then
                    if none_rhs then
                      add_finding
                        (Finding.make ~rule:"R9" ~file:f.f_file
                           ~line:f.f_line ~context:(last_component f.f_name)
                           (Printf.sprintf
                              "decision reset: `%s <- None' is reachable \
                               from `%s''s step — a committed decision \
                               must be write-once"
                              lbl bare))
                    else if not (List.mem lbl f.f_reads) then
                      add_finding
                        (Finding.make ~rule:"R9" ~file:f.f_file
                           ~line:f.f_line ~context:(last_component f.f_name)
                           (Printf.sprintf
                              "unguarded decision write: `%s' is assigned \
                               without reading it first, so a step \
                               reachable from `%s' can overwrite a \
                               committed Some with a different value"
                              lbl bare)))
                f.f_writes)
            span;
          (* R9b: head-only inbox consumption in the step component. *)
          (match comp a.a_step with
           | Some (s, _) when s.f_inbox_head_only ->
             add_finding
               (Finding.make ~rule:"R9" ~file:a.a_file ~line:s.f_line
                  ~context:bare
                  (Printf.sprintf
                     "step consumes only the head of its inbox: `%s' \
                      adopts the first delivery of the round and \
                      discards the rest, so the decision depends on \
                      delivery order within a round"
                     bare))
           | _ -> ());
          (* R9c: handler totality over the honest-sent alphabet. *)
          let missing =
            List.filter (fun c -> not (List.mem c handled)) alphabet
          in
          if missing <> [] then
            add_finding
              (Finding.make ~rule:"R9" ~file:a.a_file ~line:a.a_line
                 ~context:bare
                 (Printf.sprintf
                    "handler totality: message constructor(s) %s are sent \
                     by honest code but matched by no step-reachable case"
                    (String.concat ", " missing)));
          (* R10: the communication budget must be finite. *)
          if init_b.b_unbounded || step_b.b_unbounded then
            add_finding
              (Finding.make ~rule:"R10" ~file:a.a_file ~line:a.a_line
                 ~context:bare
                 (Printf.sprintf
                    "unbounded per-step send bound (init: %s, step: %s): \
                     the static communication budget cannot be \
                     concretized for this automaton"
                    (bound_to_string init_b) (bound_to_string step_b)));
          let round_sensitive, dedup_guarded =
            List.fold_left
              (fun (r, d) (f : fn_facts) ->
                (r || f.f_uses_round, d || f.f_dedup_guard))
              (false, false) span
          in
          protocols :=
            {
              p_name = a.a_owner;
              p_file = a.a_file;
              p_line = a.a_line;
              p_msg_type = a.a_msg_type;
              p_alphabet = alphabet;
              p_handled = handled;
              p_decision_reads = decision_reads;
              p_round_sensitive = round_sensitive;
              p_dedup_guarded = dedup_guarded;
              p_init = init_b;
              p_step = step_b;
            }
            :: !protocols)
        um.um_automata)
    units;
  (* helper table: every module-level function that produces sends,
     minus automaton constructors (their sends happen per round, not
     per call). *)
  let constructor_names =
    List.concat_map
      (fun um -> List.map (fun a -> a.a_owner) um.um_automata)
      units
  in
  let helpers =
    List.concat_map
      (fun um ->
        let env0 =
          { e_scope = []; e_module = um.um_module; e_units = table }
        in
        List.filter_map
          (fun (f : fn_facts) ->
            if List.mem f.f_name constructor_names then None
            else
              let b =
                fst (bound_of ~visiting:[] { env0 with e_scope = f.f_scope } f)
              in
              if is_zero b then None
              else
                Some
                  { h_name = f.f_name; h_file = f.f_file; h_line = f.f_line;
                    h_bound = b })
          um.um_fns)
      units
    |> List.sort (fun a b -> String.compare a.h_name b.h_name)
  in
  {
    protocols =
      List.sort (fun a b -> String.compare a.p_name b.p_name) !protocols;
    helpers;
    findings = List.sort Finding.compare !findings;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let matches_only only (p : protocol) =
  let low = String.lowercase_ascii in
  let o = low only in
  let n = low p.p_name in
  String.equal o n
  || String.equal o (low (last_component p.p_name))
  ||
  match String.index_opt p.p_name '.' with
  | Some i -> String.equal o (low (String.sub p.p_name 0 i))
  | None -> false

let find t name =
  List.find_opt (matches_only name) t.protocols

let filter_protocols only t =
  match only with
  | None -> t.protocols
  | Some o -> List.filter (matches_only o) t.protocols

let render_text ?only t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%s (%s:%d)\n" p.p_name p.p_file p.p_line);
      Buffer.add_string buf
        (Printf.sprintf "  message type:   %s\n" p.p_msg_type);
      Buffer.add_string buf
        (Printf.sprintf "  alphabet:       [%s]\n"
           (String.concat "; " p.p_alphabet));
      Buffer.add_string buf
        (Printf.sprintf "  handled:        [%s]\n"
           (String.concat "; " p.p_handled));
      Buffer.add_string buf
        (Printf.sprintf "  decision reads: [%s]\n"
           (String.concat "; " p.p_decision_reads));
      Buffer.add_string buf
        (Printf.sprintf "  round-sensitive: %b, dedup-guarded: %b\n"
           p.p_round_sensitive p.p_dedup_guarded);
      Buffer.add_string buf
        (Printf.sprintf "  init sends:     %s per node\n"
           (bound_to_string p.p_init));
      Buffer.add_string buf
        (Printf.sprintf "  step sends:     %s per activation\n"
           (bound_to_string p.p_step)))
    (filter_protocols only t);
  (match only with
   | Some _ -> ()
   | None ->
     if t.helpers <> [] then begin
       Buffer.add_string buf "send helpers:\n";
       List.iter
         (fun h ->
           Buffer.add_string buf
             (Printf.sprintf "  %-24s %s per call (%s:%d)\n" h.h_name
                (bound_to_string h.h_bound) h.h_file h.h_line))
         t.helpers
     end);
  Buffer.contents buf

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_list l = "[" ^ String.concat ", " (List.map json_string l) ^ "]"

let bound_json b =
  Printf.sprintf
    "{\"const\": %d, \"deg\": %d, \"nodes\": %d, \"inbox\": %d, \
     \"inbox_deg\": %d, \"unbounded\": %b, \"symbolic\": %s}"
    b.b_const b.b_deg b.b_nodes b.b_inbox b.b_inbox_deg b.b_unbounded
    (json_string (bound_to_string b))

let render_json ?only t =
  let protocol_json p =
    Printf.sprintf
      "    {\"name\": %s, \"file\": %s, \"line\": %d, \"msg_type\": %s,\n\
      \     \"alphabet\": %s, \"handled\": %s, \"decision_reads\": %s,\n\
      \     \"round_sensitive\": %b, \"dedup_guarded\": %b,\n\
      \     \"init\": %s,\n\
      \     \"step\": %s}"
      (json_string p.p_name)
      (json_string (Finding.normalize_path p.p_file))
      p.p_line (json_string p.p_msg_type) (json_list p.p_alphabet)
      (json_list p.p_handled)
      (json_list p.p_decision_reads)
      p.p_round_sensitive p.p_dedup_guarded (bound_json p.p_init)
      (bound_json p.p_step)
  in
  let helper_json h =
    Printf.sprintf "    {\"name\": %s, \"file\": %s, \"line\": %d, \"bound\": %s}"
      (json_string h.h_name)
      (json_string (Finding.normalize_path h.h_file))
      h.h_line (bound_json h.h_bound)
  in
  Printf.sprintf
    "{\n\
    \  \"schema\": \"rmt-lint-model/1\",\n\
    \  \"protocols\": [\n%s\n  ],\n\
    \  \"helpers\": [\n%s\n  ]\n\
     }\n"
    (String.concat ",\n" (List.map protocol_json (filter_protocols only t)))
    (String.concat ",\n"
       (List.map helper_json
          (match only with Some _ -> [] | None -> t.helpers)))

let fingerprint t = Digest.to_hex (Digest.string (render_json t))
